//! A probe + calibration bundle answering the SBDR question directly.

use dram_model::PhysAddr;

use crate::cache::ConflictCache;
use crate::calibrate::LatencyCalibration;
use crate::probe::{MemoryProbe, ProbeStats};

/// One batched [`ConflictOracle::are_sbdr`] call, as recorded by the
/// opt-in batch log ([`ConflictOracle::with_batch_log`]).
///
/// The record is plain accounting data — the probe crate knows nothing
/// about tracing. The pipeline engine drains these after each phase and
/// adapts them onto telemetry events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRecord {
    /// Pairs the caller asked about.
    pub pairs: u32,
    /// Pairs answered from the conflict cache without measuring.
    pub cached: u32,
    /// Probe measurements issued (uncached pairs times majority votes).
    pub measured: u32,
}

/// Combines a [`MemoryProbe`] with a [`LatencyCalibration`] so that callers
/// can ask the binary question the algorithms actually need: *are these two
/// addresses in the same bank but different rows?*
///
/// Every reverse-engineering tool in this workspace (DRAMDig and the
/// baselines) is written against this type, which keeps their measurement
/// budget accounting in one place. Two optional accelerators sit between the
/// question and the memory bus:
///
/// * a [`ConflictCache`] ([`ConflictOracle::with_cache`]) answers repeated
///   queries about the same unordered pair without re-timing it;
/// * early-exit majority voting ([`ConflictOracle::with_early_exit`]) stops a
///   `repeat`-vote query as soon as one side holds a strict majority — the
///   outcome is provably identical to counting all votes, only cheaper.
#[derive(Debug)]
pub struct ConflictOracle<P> {
    probe: P,
    calibration: LatencyCalibration,
    repeat: u32,
    early_exit: bool,
    cache: Option<ConflictCache>,
    batch_log: Option<Vec<BatchRecord>>,
}

impl<P: MemoryProbe> ConflictOracle<P> {
    /// Creates an oracle from a probe and its calibration.
    pub fn new(probe: P, calibration: LatencyCalibration) -> Self {
        ConflictOracle {
            probe,
            calibration,
            repeat: 1,
            early_exit: false,
            cache: None,
            batch_log: None,
        }
    }

    /// Repeats each query `repeat` times and takes a majority vote — used by
    /// tools that want extra robustness at the cost of more measurements.
    pub fn with_repeat(mut self, repeat: u32) -> Self {
        assert!(repeat >= 1, "repeat must be at least 1");
        self.repeat = repeat;
        self
    }

    /// Stops a majority vote as soon as either side reaches a strict
    /// majority of `repeat`. The decision is identical to counting every
    /// vote; only the measurement count shrinks (e.g. 2 instead of 3 when
    /// the first two of three votes agree).
    pub fn with_early_exit(mut self, early_exit: bool) -> Self {
        self.early_exit = early_exit;
        self
    }

    /// Attaches a [`ConflictCache`] of the given capacity so repeated
    /// queries about the same unordered pair never re-time it.
    pub fn with_cache(mut self, capacity: usize) -> Self {
        self.cache = Some(ConflictCache::new(capacity));
        self
    }

    /// Starts recording one [`BatchRecord`] per [`ConflictOracle::are_sbdr`]
    /// call. Off by default: a disabled log is a `None` check on the batch
    /// path and costs no measurements either way — classification is
    /// untouched.
    pub fn with_batch_log(mut self, enabled: bool) -> Self {
        self.batch_log = if enabled { Some(Vec::new()) } else { None };
        self
    }

    /// Drains the recorded batch log (empty when logging is disabled).
    /// Logging stays enabled afterwards, so callers can drain per phase.
    pub fn take_batch_records(&mut self) -> Vec<BatchRecord> {
        match &mut self.batch_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// The configured number of majority votes per query.
    pub fn repeat(&self) -> u32 {
        self.repeat
    }

    /// The calibration in use.
    pub fn calibration(&self) -> &LatencyCalibration {
        &self.calibration
    }

    /// Replaces the calibration. The pipeline engine constructs the oracle
    /// before its calibration phase has run (so the cache and accounting
    /// exist from the first measurement) and installs the threshold here —
    /// either freshly measured or restored from a checkpoint.
    pub fn set_calibration(&mut self, calibration: LatencyCalibration) {
        self.calibration = calibration;
    }

    /// The underlying probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Exclusive access to the underlying probe.
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Consumes the oracle and returns the probe.
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// The attached conflict cache, if any.
    pub fn cache(&self) -> Option<&ConflictCache> {
        self.cache.as_ref()
    }

    /// Exclusive access to the attached conflict cache, if any. The
    /// pipeline engine uses this to replay a checkpointed cache snapshot
    /// (oldest entry first) into a fresh oracle on resume.
    pub fn cache_mut(&mut self) -> Option<&mut ConflictCache> {
        self.cache.as_mut()
    }

    /// Cost accounting so far: the probe's counters plus the cache's
    /// hit/miss counters (zero when no cache is attached).
    pub fn stats(&self) -> ProbeStats {
        let mut stats = self.probe.stats();
        if let Some(cache) = &self.cache {
            stats.cache_hits = cache.hits();
            stats.cache_misses = cache.misses();
        }
        stats
    }

    /// Measures a pair once and returns the raw latency (always hits the
    /// probe; raw latencies are not cacheable classifications).
    pub fn latency(&mut self, a: PhysAddr, b: PhysAddr) -> u64 {
        self.probe.measure_pair(a, b)
    }

    /// Runs the (possibly early-exiting) majority vote for one pair.
    fn vote(&mut self, a: PhysAddr, b: PhysAddr) -> bool {
        if self.repeat == 1 {
            let lat = self.probe.measure_pair(a, b);
            return self.calibration.is_conflict(lat);
        }
        let majority = self.repeat / 2 + 1;
        let mut yes = 0u32;
        let mut no = 0u32;
        for _ in 0..self.repeat {
            if self.calibration.is_conflict(self.probe.measure_pair(a, b)) {
                yes += 1;
            } else {
                no += 1;
            }
            if self.early_exit && (yes >= majority || no >= majority) {
                break;
            }
        }
        // `yes >= majority` is exactly `yes * 2 > repeat` once all votes are
        // in, and the early exit only fires when one side is already there.
        yes >= majority
    }

    /// Returns `true` if `a` and `b` are observed to be in the same bank but
    /// different rows (high latency / row-buffer conflict).
    pub fn is_sbdr(&mut self, a: PhysAddr, b: PhysAddr) -> bool {
        if let Some(cache) = &mut self.cache {
            if let Some(cached) = cache.lookup(a, b) {
                return cached;
            }
        }
        let verdict = self.vote(a, b);
        if let Some(cache) = &mut self.cache {
            cache.record(a, b, verdict);
        }
        verdict
    }

    /// Classifies a batch of pairs, returning one SBDR verdict per pair in
    /// input order.
    ///
    /// Cached pairs are answered for free; the uncached remainder goes to
    /// the probe through [`MemoryProbe::measure_pairs`] in one batch. A
    /// majority-vote oracle repeats each uncached pair `repeat` times
    /// *consecutively* inside that batch and votes over each chunk of
    /// latencies — the measurement order and count are identical to the
    /// per-pair [`ConflictOracle::is_sbdr`] loop, so checkpointed runs and
    /// golden scoreboards see the same stream. Only an early-exiting vote
    /// (inherently sequential: the next measurement depends on the tally so
    /// far) falls back to pair-at-a-time voting.
    ///
    /// The calibration threshold is read once per batch instead of once per
    /// pair; each latency is then a plain compare.
    pub fn are_sbdr(&mut self, pairs: &[(PhysAddr, PhysAddr)]) -> Vec<bool> {
        if self.repeat != 1 && self.early_exit {
            let before = self.batch_log.is_some().then(|| self.stats());
            let verdicts: Vec<bool> = pairs.iter().map(|&(a, b)| self.is_sbdr(a, b)).collect();
            if let Some(before) = before {
                let after = self.stats();
                let record = BatchRecord {
                    pairs: pairs.len() as u32,
                    cached: (after.cache_hits - before.cache_hits) as u32,
                    measured: (after.measurements - before.measurements) as u32,
                };
                self.batch_log.as_mut().expect("log enabled").push(record);
            }
            return verdicts;
        }
        let mut verdicts: Vec<Option<bool>> = Vec::with_capacity(pairs.len());
        let mut to_measure: Vec<(usize, (PhysAddr, PhysAddr))> = Vec::new();
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let cached = self.cache.as_mut().and_then(|cache| cache.lookup(a, b));
            verdicts.push(cached);
            if cached.is_none() {
                to_measure.push((i, (a, b)));
            }
        }
        let repeat = self.repeat as usize;
        let mut batch: Vec<(PhysAddr, PhysAddr)> =
            Vec::with_capacity(to_measure.len().saturating_mul(repeat));
        for &(_, pair) in &to_measure {
            batch.extend(std::iter::repeat_n(pair, repeat));
        }
        let latencies = self.probe.measure_pairs(&batch);
        if let Some(log) = &mut self.batch_log {
            log.push(BatchRecord {
                pairs: pairs.len() as u32,
                cached: (pairs.len() - to_measure.len()) as u32,
                measured: batch.len() as u32,
            });
        }
        let threshold = self.calibration.threshold_ns();
        let majority = self.repeat / 2 + 1;
        for (&(i, (a, b)), votes) in to_measure.iter().zip(latencies.chunks(repeat)) {
            let yes = votes.iter().filter(|&&lat| lat >= threshold).count() as u32;
            let verdict = yes >= majority;
            if let Some(cache) = &mut self.cache {
                cache.record(a, b, verdict);
            }
            verdicts[i] = Some(verdict);
        }
        verdicts
            .into_iter()
            .map(|v| v.expect("every pair is either cached or measured"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_probe::SimProbe;
    use dram_model::{DramAddress, MachineSetting};
    use dram_sim::{PhysMemory, SimConfig, SimMachine};

    fn oracle(noise: bool) -> ConflictOracle<SimProbe> {
        let setting = MachineSetting::no7_skylake_ddr4_4g();
        let config = if noise {
            SimConfig::default()
        } else {
            SimConfig::noiseless()
        };
        let machine = SimMachine::from_setting(&setting, config);
        let timing = machine.controller().config().timing;
        let probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
        ConflictOracle::new(
            probe,
            LatencyCalibration::from_threshold(timing.oracle_threshold_ns()),
        )
    }

    #[test]
    fn oracle_agrees_with_ground_truth() {
        let mut o = oracle(false);
        let truth = o.probe().machine().ground_truth().clone();
        let a = truth.to_phys(DramAddress::new(3, 50, 0)).unwrap();
        let sbdr = truth.to_phys(DramAddress::new(3, 70, 0)).unwrap();
        let same_row = truth.to_phys(DramAddress::new(3, 50, 128)).unwrap();
        let other_bank = truth.to_phys(DramAddress::new(6, 50, 0)).unwrap();
        assert!(o.is_sbdr(a, sbdr));
        assert!(!o.is_sbdr(a, same_row));
        assert!(!o.is_sbdr(a, other_bank));
    }

    #[test]
    fn majority_vote_with_noise_is_stable() {
        let mut o = oracle(true).with_repeat(3);
        let truth = o.probe().machine().ground_truth().clone();
        let a = truth.to_phys(DramAddress::new(1, 10, 0)).unwrap();
        let b = truth.to_phys(DramAddress::new(1, 4000, 0)).unwrap();
        let c = truth.to_phys(DramAddress::new(2, 10, 0)).unwrap();
        for _ in 0..25 {
            assert!(o.is_sbdr(a, b));
            assert!(!o.is_sbdr(a, c));
        }
    }

    #[test]
    fn early_exit_matches_full_vote_and_measures_less() {
        let truth = oracle(false).probe().machine().ground_truth().clone();
        let a = truth.to_phys(DramAddress::new(1, 10, 0)).unwrap();
        let b = truth.to_phys(DramAddress::new(1, 900, 0)).unwrap();
        let c = truth.to_phys(DramAddress::new(2, 10, 0)).unwrap();

        let mut full = oracle(false).with_repeat(5);
        let mut early = oracle(false).with_repeat(5).with_early_exit(true);
        assert_eq!(full.is_sbdr(a, b), early.is_sbdr(a, b));
        assert_eq!(full.is_sbdr(a, c), early.is_sbdr(a, c));
        // Noiseless votes agree immediately: 3 measurements per query
        // instead of 5.
        assert_eq!(full.stats().measurements, 10);
        assert_eq!(early.stats().measurements, 6);
    }

    #[test]
    fn cache_answers_repeat_queries_without_measuring() {
        let mut o = oracle(false).with_cache(1024);
        let truth = o.probe().machine().ground_truth().clone();
        let a = truth.to_phys(DramAddress::new(0, 1, 0)).unwrap();
        let b = truth.to_phys(DramAddress::new(0, 900, 0)).unwrap();
        assert!(o.is_sbdr(a, b));
        let after_first = o.stats().measurements;
        // Same pair in both orders: answered from the cache.
        assert!(o.is_sbdr(a, b));
        assert!(o.is_sbdr(b, a));
        let stats = o.stats();
        assert_eq!(stats.measurements, after_first);
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.cache_misses, 1);
        assert!(o.cache().is_some());
    }

    #[test]
    fn batched_queries_mix_cache_and_measurements() {
        let mut o = oracle(false).with_cache(1024);
        let truth = o.probe().machine().ground_truth().clone();
        let a = truth.to_phys(DramAddress::new(3, 5, 0)).unwrap();
        let b = truth.to_phys(DramAddress::new(3, 77, 0)).unwrap();
        let c = truth.to_phys(DramAddress::new(5, 5, 0)).unwrap();
        assert!(o.is_sbdr(a, b)); // warm the cache with one pair
        let verdicts = o.are_sbdr(&[(b, a), (a, c), (a, b)]);
        assert_eq!(verdicts, vec![true, false, true]);
        let stats = o.stats();
        assert_eq!(stats.measurements, 2, "only (a, c) needed a measurement");
        assert_eq!(stats.cache_hits, 2);
    }

    #[test]
    fn batched_queries_without_cache_match_single_queries() {
        let mut batched = oracle(false);
        let mut single = oracle(false);
        let truth = batched.probe().machine().ground_truth().clone();
        let pairs: Vec<(PhysAddr, PhysAddr)> = (0u32..6)
            .map(|i| {
                (
                    truth.to_phys(DramAddress::new(i % 4, 3, 0)).unwrap(),
                    truth.to_phys(DramAddress::new(2, 9 + i, 0)).unwrap(),
                )
            })
            .collect();
        let expected: Vec<bool> = pairs.iter().map(|&(a, b)| single.is_sbdr(a, b)).collect();
        assert_eq!(batched.are_sbdr(&pairs), expected);
        assert_eq!(batched.stats().measurements, single.stats().measurements);
    }

    #[test]
    fn batched_majority_votes_match_per_pair_voting() {
        // Same noisy machine, same seed: the flattened batch (each pair
        // repeated `repeat` times consecutively) must reproduce the exact
        // measurement stream of the per-pair voting loop, hence identical
        // verdicts and counts.
        let mut batched = oracle(true).with_repeat(3).with_cache(64);
        let mut single = oracle(true).with_repeat(3).with_cache(64);
        let truth = batched.probe().machine().ground_truth().clone();
        let pairs: Vec<(PhysAddr, PhysAddr)> = (0u32..8)
            .map(|i| {
                (
                    truth.to_phys(DramAddress::new(i % 4, 7, 0)).unwrap(),
                    truth.to_phys(DramAddress::new(2, 40 + i, 0)).unwrap(),
                )
            })
            .collect();
        let expected: Vec<bool> = pairs.iter().map(|&(a, b)| single.is_sbdr(a, b)).collect();
        assert_eq!(batched.are_sbdr(&pairs), expected);
        let b = batched.stats();
        let s = single.stats();
        assert_eq!(b.measurements, s.measurements);
        assert_eq!(b.elapsed_ns, s.elapsed_ns, "identical latency stream");
    }

    #[test]
    fn early_exit_batches_fall_back_to_sequential_voting() {
        // An early-exiting vote adapts its measurement count to the tally,
        // so the batch path must keep the sequential loop.
        let mut batched = oracle(false).with_repeat(5).with_early_exit(true);
        let mut single = oracle(false).with_repeat(5).with_early_exit(true);
        let truth = batched.probe().machine().ground_truth().clone();
        let a = truth.to_phys(DramAddress::new(1, 10, 0)).unwrap();
        let b = truth.to_phys(DramAddress::new(1, 900, 0)).unwrap();
        let c = truth.to_phys(DramAddress::new(2, 10, 0)).unwrap();
        let expected = vec![single.is_sbdr(a, b), single.is_sbdr(a, c)];
        assert_eq!(batched.are_sbdr(&[(a, b), (a, c)]), expected);
        // Noiseless early exit: 3 of 5 votes per pair.
        assert_eq!(batched.stats().measurements, 6);
    }

    #[test]
    fn batch_log_records_without_perturbing_measurements() {
        let truth = oracle(false).probe().machine().ground_truth().clone();
        let a = truth.to_phys(DramAddress::new(3, 5, 0)).unwrap();
        let b = truth.to_phys(DramAddress::new(3, 77, 0)).unwrap();
        let c = truth.to_phys(DramAddress::new(5, 5, 0)).unwrap();

        let mut plain = oracle(false).with_repeat(3).with_cache(64);
        let mut logged = oracle(false)
            .with_repeat(3)
            .with_cache(64)
            .with_batch_log(true);
        assert!(
            plain.take_batch_records().is_empty(),
            "disabled log is empty"
        );

        plain.is_sbdr(a, b);
        logged.is_sbdr(a, b);
        let expected = plain.are_sbdr(&[(b, a), (a, c)]);
        assert_eq!(logged.are_sbdr(&[(b, a), (a, c)]), expected);
        assert_eq!(
            logged.stats().measurements,
            plain.stats().measurements,
            "logging must not change the measurement stream"
        );
        let records = logged.take_batch_records();
        assert_eq!(
            records,
            vec![BatchRecord {
                pairs: 2,
                cached: 1,
                measured: 3,
            }]
        );
        assert!(logged.take_batch_records().is_empty(), "drained");

        // The early-exit fallback path records through stats deltas.
        let mut early = oracle(false)
            .with_repeat(5)
            .with_early_exit(true)
            .with_batch_log(true);
        early.are_sbdr(&[(a, b), (a, c)]);
        assert_eq!(
            early.take_batch_records(),
            vec![BatchRecord {
                pairs: 2,
                cached: 0,
                measured: 6,
            }]
        );
    }

    #[test]
    fn stats_accumulate_through_oracle() {
        let mut o = oracle(false);
        let truth = o.probe().machine().ground_truth().clone();
        let a = truth.to_phys(DramAddress::new(0, 1, 0)).unwrap();
        let b = truth.to_phys(DramAddress::new(0, 2, 0)).unwrap();
        let before = o.stats().measurements;
        o.is_sbdr(a, b);
        o.latency(a, b);
        assert_eq!(o.stats().measurements, before + 2);
    }

    #[test]
    #[should_panic(expected = "repeat")]
    fn zero_repeat_rejected() {
        let _ = oracle(false).with_repeat(0);
    }
}
