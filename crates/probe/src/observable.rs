//! The pluggable observable-channel layer.
//!
//! A channel that can *observe* something about the memory system implements
//! [`Observable`]: it answers structured [`ObservableQuery`] questions with a
//! calibrated-confidence [`ObservableAnswer`] and accounts for what the
//! answers cost ([`ObservableCost`]). The pipeline engine is written against
//! this seam rather than against a concrete probe, so conflict timing,
//! rowhammer flip adjacency and future channels (refresh-rate, command-level
//! probing) are interchangeable and composable.
//!
//! Two channel families exist in this workspace:
//!
//! * [`ConflictTimingObservable`] wraps the existing
//!   [`ConflictOracle`]/calibration/cache stack. Its measurement sequences
//!   are byte-identical to calling the oracle directly, so every
//!   checkpoint/resume and scoreboard-determinism guarantee survives the
//!   redesign.
//! * `FlipAdjacencyObservable` (in the `rowhammer` crate) answers
//!   [`ObservableQuery::RowAdjacency`] by double-sided hammering and can
//!   recover an XOR row-remap mask that is provably invisible to conflict
//!   timing.

use std::fmt;

use dram_model::{AddressMapping, PhysAddr};

use crate::error::ProbeError;
use crate::oracle::ConflictOracle;
use crate::probe::MemoryProbe;

/// The channels a tool can be asked to observe the memory system through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ObservableKind {
    /// Row-buffer-conflict timing (the classic DRAMDig channel).
    ConflictTiming,
    /// Rowhammer bit-flip adjacency (flips betray physical row neighbours).
    FlipAdjacency,
}

impl ObservableKind {
    /// Every kind, in canonical order.
    pub const ALL: [ObservableKind; 2] = [
        ObservableKind::ConflictTiming,
        ObservableKind::FlipAdjacency,
    ];

    /// Stable name used by CLI flags, scoreboards and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            ObservableKind::ConflictTiming => "timing",
            ObservableKind::FlipAdjacency => "flip-adjacency",
        }
    }

    /// Parses a stable name back into a kind.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.as_str() == name)
    }
}

impl fmt::Display for ObservableKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A structured question about two physical addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObservableQuery {
    /// Are the two addresses in the same bank but different rows?
    SameBankDifferentRow {
        /// First address of the pair.
        a: PhysAddr,
        /// Second address of the pair.
        b: PhysAddr,
    },
    /// Do the two addresses (known to share a bank) lie in the same row?
    RowEquality {
        /// First address of the pair.
        a: PhysAddr,
        /// Second address of the pair.
        b: PhysAddr,
    },
    /// Are the two addresses in physically adjacent (±2, i.e. double-sided
    /// aggressor positions around one victim) rows of the same bank?
    RowAdjacency {
        /// First aggressor address.
        a: PhysAddr,
        /// Second aggressor address.
        b: PhysAddr,
    },
}

/// A channel's answer to an [`ObservableQuery`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservableAnswer {
    /// The binary verdict on the question.
    pub verdict: bool,
    /// Calibrated probability in `[0, 1]` that the verdict is correct, given
    /// the channel's error model (vote count, flip-vulnerability rate, …).
    pub confidence: f64,
}

/// What a channel has spent answering queries so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObservableCost {
    /// Timed address pairs (row-buffer-conflict measurements).
    pub timing_pairs: u64,
    /// Hammered aggressor pairs (double-sided rowhammer rounds).
    pub hammer_pairs: u64,
    /// Simulated nanoseconds consumed by the channel.
    pub elapsed_ns: u64,
}

impl ObservableCost {
    /// Saturating element-wise sum of two costs.
    pub fn merge(&self, other: &ObservableCost) -> ObservableCost {
        ObservableCost {
            timing_pairs: self.timing_pairs.saturating_add(other.timing_pairs),
            hammer_pairs: self.hammer_pairs.saturating_add(other.hammer_pairs),
            elapsed_ns: self.elapsed_ns.saturating_add(other.elapsed_ns),
        }
    }
}

/// A side channel that can answer structured queries about the memory
/// system, with calibrated confidence and cost accounting.
///
/// The pipeline engine drives every channel through this trait. Channels
/// differ in which queries they support ([`Observable::supports`]); asking an
/// unsupported query is a contract violation and returns
/// [`ProbeError::Unsupported`].
pub trait Observable {
    /// Which channel family this is.
    fn kind(&self) -> ObservableKind;

    /// Whether this channel can answer the given query (some channels also
    /// need [`Observable::inform_mapping`] first).
    fn supports(&self, query: &ObservableQuery) -> bool;

    /// Answers a supported query, spending measurements.
    fn answer(&mut self, query: &ObservableQuery) -> Result<ObservableAnswer, ProbeError>;

    /// Total cost spent by this channel so far.
    fn cost(&self) -> ObservableCost;

    /// Gives the channel the linear mapping skeleton recovered so far (bank
    /// functions + row bits). Channels that target addresses by row — like
    /// flip adjacency — need this before they can answer anything; the
    /// default is a no-op for channels that do not.
    fn inform_mapping(&mut self, mapping: &AddressMapping) {
        let _ = mapping;
    }

    /// Attempts to recover an XOR row-remap mask hiding behind the linear
    /// skeleton (logical row `r` stored in array row `r ^ mask`). Returns
    /// `Ok(None)` when the channel cannot see remapping — the default for
    /// timing-style channels, since an XOR involution preserves row equality
    /// and is therefore invisible to conflict timing.
    fn recover_row_remap(&mut self) -> Result<Option<u32>, ProbeError> {
        Ok(None)
    }
}

/// Exact probability that an `repeat`-vote majority is correct when each
/// individual vote errs independently with probability `per_vote_error`.
fn majority_confidence(repeat: u32, per_vote_error: f64) -> f64 {
    let n = repeat;
    let majority = n / 2 + 1;
    // Sum P(k wrong votes) over k >= majority; binomial coefficients built
    // incrementally to stay exact for the small vote counts used here.
    let mut wrong = 0.0f64;
    let mut binom = 1.0f64; // C(n, 0)
    for k in 0..=n {
        if k >= majority {
            wrong +=
                binom * per_vote_error.powi(k as i32) * (1.0 - per_vote_error).powi((n - k) as i32);
        }
        binom = binom * (n - k) as f64 / (k + 1) as f64;
    }
    1.0 - wrong
}

/// The conflict-timing channel: a [`ConflictOracle`] (probe + calibration +
/// optional cache + majority voting) behind the [`Observable`] seam.
///
/// Answers are produced by *exactly* the same oracle calls the pipeline used
/// before the redesign — one `is_sbdr` per query, in query order — so the
/// measurement sequence, cache state and checkpoint artifacts stay
/// byte-identical to the direct-oracle path.
#[derive(Debug)]
pub struct ConflictTimingObservable<P> {
    oracle: ConflictOracle<P>,
}

impl<P: MemoryProbe> ConflictTimingObservable<P> {
    /// Wraps an oracle as an observable channel.
    pub fn new(oracle: ConflictOracle<P>) -> Self {
        ConflictTimingObservable { oracle }
    }

    /// Shared access to the wrapped oracle.
    pub fn oracle(&self) -> &ConflictOracle<P> {
        &self.oracle
    }

    /// Exclusive access to the wrapped oracle (the pipeline phases keep
    /// their existing oracle-based signatures and borrow it through here).
    pub fn oracle_mut(&mut self) -> &mut ConflictOracle<P> {
        &mut self.oracle
    }

    /// Consumes the channel and returns the oracle.
    pub fn into_oracle(self) -> ConflictOracle<P> {
        self.oracle
    }

    /// Assumed probability that a single calibrated conflict measurement
    /// misclassifies a pair; the basis of the reported confidence.
    pub const PER_VOTE_ERROR: f64 = 0.1;
}

impl<P: MemoryProbe> Observable for ConflictTimingObservable<P> {
    fn kind(&self) -> ObservableKind {
        ObservableKind::ConflictTiming
    }

    fn supports(&self, query: &ObservableQuery) -> bool {
        matches!(
            query,
            ObservableQuery::SameBankDifferentRow { .. } | ObservableQuery::RowEquality { .. }
        )
    }

    fn answer(&mut self, query: &ObservableQuery) -> Result<ObservableAnswer, ProbeError> {
        let confidence = majority_confidence(self.oracle.repeat(), Self::PER_VOTE_ERROR);
        match *query {
            ObservableQuery::SameBankDifferentRow { a, b } => Ok(ObservableAnswer {
                verdict: self.oracle.is_sbdr(a, b),
                confidence,
            }),
            // Given the same-bank precondition of the query, "same row" is
            // exactly "no row-buffer conflict".
            ObservableQuery::RowEquality { a, b } => Ok(ObservableAnswer {
                verdict: !self.oracle.is_sbdr(a, b),
                confidence,
            }),
            ObservableQuery::RowAdjacency { .. } => Err(ProbeError::Unsupported {
                reason: "conflict timing cannot distinguish adjacent from distant rows".into(),
            }),
        }
    }

    fn cost(&self) -> ObservableCost {
        let stats = self.oracle.stats();
        ObservableCost {
            timing_pairs: stats.measurements,
            hammer_pairs: 0,
            elapsed_ns: stats.elapsed_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::LatencyCalibration;
    use crate::sim_probe::SimProbe;
    use dram_model::{DramAddress, MachineSetting};
    use dram_sim::{PhysMemory, SimConfig, SimMachine};

    fn channel() -> ConflictTimingObservable<SimProbe> {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let machine = SimMachine::from_setting(&setting, SimConfig::noiseless());
        let timing = machine.controller().config().timing;
        let probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
        ConflictTimingObservable::new(ConflictOracle::new(
            probe,
            LatencyCalibration::from_threshold(timing.oracle_threshold_ns()),
        ))
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in ObservableKind::ALL {
            assert_eq!(ObservableKind::from_name(kind.as_str()), Some(kind));
            assert_eq!(format!("{kind}"), kind.as_str());
        }
        assert_eq!(ObservableKind::from_name("laser"), None);
    }

    #[test]
    fn timing_channel_answers_sbdr_and_row_equality() {
        let mut ch = channel();
        let truth = ch.oracle().probe().machine().ground_truth().clone();
        let a = truth.to_phys(DramAddress::new(3, 50, 0)).unwrap();
        let sbdr = truth.to_phys(DramAddress::new(3, 70, 0)).unwrap();
        let same_row = truth.to_phys(DramAddress::new(3, 50, 128)).unwrap();

        let q = ObservableQuery::SameBankDifferentRow { a, b: sbdr };
        assert!(ch.supports(&q));
        let ans = ch.answer(&q).unwrap();
        assert!(ans.verdict);
        assert!(ans.confidence > 0.5 && ans.confidence <= 1.0);

        let eq = ObservableQuery::RowEquality { a, b: same_row };
        assert!(ch.supports(&eq));
        assert!(ch.answer(&eq).unwrap().verdict);
        let neq = ObservableQuery::RowEquality { a, b: sbdr };
        assert!(!ch.answer(&neq).unwrap().verdict);
    }

    #[test]
    fn timing_channel_rejects_adjacency() {
        let mut ch = channel();
        let truth = ch.oracle().probe().machine().ground_truth().clone();
        let a = truth.to_phys(DramAddress::new(0, 10, 0)).unwrap();
        let b = truth.to_phys(DramAddress::new(0, 12, 0)).unwrap();
        let q = ObservableQuery::RowAdjacency { a, b };
        assert!(!ch.supports(&q));
        assert!(ch.answer(&q).is_err());
        assert_eq!(ch.recover_row_remap().unwrap(), None);
    }

    #[test]
    fn cost_tracks_timing_pairs() {
        let mut ch = channel();
        let truth = ch.oracle().probe().machine().ground_truth().clone();
        let a = truth.to_phys(DramAddress::new(1, 1, 0)).unwrap();
        let b = truth.to_phys(DramAddress::new(1, 2, 0)).unwrap();
        assert_eq!(ch.cost(), ObservableCost::default());
        ch.answer(&ObservableQuery::SameBankDifferentRow { a, b })
            .unwrap();
        let cost = ch.cost();
        assert_eq!(cost.timing_pairs, 1);
        assert_eq!(cost.hammer_pairs, 0);
        assert!(cost.elapsed_ns > 0);
        let doubled = cost.merge(&cost);
        assert_eq!(doubled.timing_pairs, 2);
    }

    #[test]
    fn majority_confidence_grows_with_votes() {
        let one = majority_confidence(1, 0.1);
        let three = majority_confidence(3, 0.1);
        let five = majority_confidence(5, 0.1);
        assert!((one - 0.9).abs() < 1e-12);
        assert!(three > one && five > three && five < 1.0);
    }
}
