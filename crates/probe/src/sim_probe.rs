//! Probe backed by the [`dram_sim`] substrate.

use dram_model::PhysAddr;
use dram_sim::{PhysMemory, SimConfig, SimMachine};

use crate::probe::{MemoryProbe, ProbeStats};

/// Default number of alternating access rounds per measurement.
pub const DEFAULT_ROUNDS: u32 = 12;

/// Rounds used under heavy-noise profiles (see [`rounds_for`]).
pub const NOISY_ROUNDS: u32 = 16;

/// The measurement-rounds budget matched to a machine's noise profile: the
/// median-of-rounds filter needs a deeper sample when the simulator injects
/// a TRR-like periodic spike or an elevated outlier rate, and wasting rounds
/// on quiet machines would slow every tool down for nothing. The scenario
/// evaluation derives each probe's rounds from the scenario's [`SimConfig`]
/// through this one function so all tools see the same channel quality.
pub fn rounds_for(config: &SimConfig) -> u32 {
    if config.timing.trr_period > 0 || config.timing.outlier_probability > 0.02 {
        NOISY_ROUNDS
    } else {
        DEFAULT_ROUNDS
    }
}

/// A [`MemoryProbe`] that measures latencies on a [`SimMachine`].
///
/// For each measurement the probe accesses the two addresses alternately for
/// a number of rounds and reports the *median* per-access latency, which
/// suppresses the occasional outlier the simulator injects (as real tools
/// suppress interrupts/refresh spikes).
#[derive(Debug, Clone)]
pub struct SimProbe {
    machine: SimMachine,
    memory: PhysMemory,
    rounds: u32,
    measurements: u64,
    /// Reused latency buffer: a grid run takes millions of measurements,
    /// so per-measurement allocation is measurable wall time.
    scratch: Vec<u64>,
}

impl SimProbe {
    /// Creates a probe over a simulated machine and page pool.
    pub fn new(machine: SimMachine, memory: PhysMemory) -> Self {
        SimProbe {
            machine,
            memory,
            rounds: DEFAULT_ROUNDS,
            measurements: 0,
            scratch: Vec::new(),
        }
    }

    /// Sets the number of alternating rounds per measurement.
    pub fn with_rounds(mut self, rounds: u32) -> Self {
        assert!(rounds >= 1, "at least one round is required");
        self.rounds = rounds;
        self
    }

    /// Shared access to the underlying simulated machine (e.g. to read the
    /// ground truth for verification after reverse engineering).
    pub fn machine(&self) -> &SimMachine {
        &self.machine
    }

    /// Exclusive access to the underlying simulated machine (the rowhammer
    /// harness hammers through the same controller the probe measured).
    pub fn machine_mut(&mut self) -> &mut SimMachine {
        &mut self.machine
    }

    /// Consumes the probe and returns the machine.
    pub fn into_machine(self) -> SimMachine {
        self.machine
    }
}

impl MemoryProbe for SimProbe {
    fn measure_pair(&mut self, a: PhysAddr, b: PhysAddr) -> u64 {
        let controller = self.machine.controller_mut();
        // Start from a clean row-buffer state, as real tools do by touching
        // unrelated memory / waiting between measurements.
        controller.close_all_rows();
        // The loop only ever touches these two addresses, so decode each
        // once and replay the accesses at fixed coordinates — the latency
        // and RNG streams are identical to decoding inside every access.
        let da = controller.decode(a);
        let db = controller.decode(b);
        self.scratch.clear();
        // Warm-up access: opens a's row so the loop measures the steady state.
        controller.access_decoded(da.bank, da.row);
        for _ in 0..self.rounds {
            self.scratch
                .push(controller.access_decoded(db.bank, db.row));
            self.scratch
                .push(controller.access_decoded(da.bank, da.row));
        }
        self.measurements += 1;
        // The median is the element a full sort would put at the midpoint;
        // selection finds exactly that element without sorting the rest.
        let mid = self.scratch.len() / 2;
        *self.scratch.select_nth_unstable(mid).1
    }

    fn memory(&self) -> &PhysMemory {
        &self.memory
    }

    fn stats(&self) -> ProbeStats {
        let sim = self.machine.controller().stats();
        ProbeStats {
            measurements: self.measurements,
            accesses: sim.accesses,
            elapsed_ns: sim.elapsed_ns,
            ..ProbeStats::default()
        }
    }

    fn rounds(&self) -> u32 {
        self.rounds
    }

    fn begin_phase(&mut self, salt: u64) {
        self.machine.controller_mut().begin_phase(salt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_model::{DramAddress, MachineSetting};
    use dram_sim::SimConfig;

    fn probe(noiseless: bool) -> SimProbe {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let config = if noiseless {
            SimConfig::noiseless()
        } else {
            SimConfig::default()
        };
        let machine = SimMachine::from_setting(&setting, config);
        SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes))
    }

    #[test]
    fn sbdr_pair_measures_conflict_latency() {
        let mut p = probe(true);
        let truth = p.machine().ground_truth().clone();
        let a = truth.to_phys(DramAddress::new(2, 10, 0)).unwrap();
        let b = truth.to_phys(DramAddress::new(2, 900, 0)).unwrap();
        let lat = p.measure_pair(a, b);
        assert_eq!(
            lat,
            p.machine().controller().config().timing.row_conflict_ns
        );
    }

    #[test]
    fn same_row_and_cross_bank_pairs_measure_hit_latency() {
        let mut p = probe(true);
        let truth = p.machine().ground_truth().clone();
        let hit = p.machine().controller().config().timing.row_hit_ns;
        let a = truth.to_phys(DramAddress::new(2, 10, 0)).unwrap();
        let same_row = truth.to_phys(DramAddress::new(2, 10, 256)).unwrap();
        let other_bank = truth.to_phys(DramAddress::new(5, 10, 0)).unwrap();
        assert_eq!(p.measure_pair(a, same_row), hit);
        assert_eq!(p.measure_pair(a, other_bank), hit);
    }

    #[test]
    fn median_suppresses_noise_outliers() {
        let mut p = probe(false).with_rounds(16);
        let truth = p.machine().ground_truth().clone();
        let timing = p.machine().controller().config().timing;
        let a = truth.to_phys(DramAddress::new(1, 5, 0)).unwrap();
        let b = truth.to_phys(DramAddress::new(1, 700, 0)).unwrap();
        let c = truth.to_phys(DramAddress::new(4, 9, 0)).unwrap();
        for _ in 0..20 {
            let conflict = p.measure_pair(a, b);
            let no_conflict = p.measure_pair(a, c);
            assert!(
                conflict > timing.oracle_threshold_ns(),
                "conflict {conflict}"
            );
            assert!(
                no_conflict < timing.oracle_threshold_ns(),
                "no conflict {no_conflict}"
            );
        }
    }

    #[test]
    fn stats_track_measurements_and_accesses() {
        let mut p = probe(true);
        let truth = p.machine().ground_truth().clone();
        let a = truth.to_phys(DramAddress::new(0, 1, 0)).unwrap();
        let b = truth.to_phys(DramAddress::new(0, 2, 0)).unwrap();
        p.measure_pair(a, b);
        p.measure_pair(a, b);
        let s = p.stats();
        assert_eq!(s.measurements, 2);
        assert_eq!(s.accesses, u64::from(p.rounds()) * 4 + 2);
        assert!(s.elapsed_ns > 0);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let _ = probe(true).with_rounds(0);
    }

    #[test]
    fn rounds_match_the_noise_profile() {
        assert_eq!(rounds_for(&SimConfig::noiseless()), DEFAULT_ROUNDS);
        assert_eq!(rounds_for(&SimConfig::default()), DEFAULT_ROUNDS);
        assert_eq!(rounds_for(&SimConfig::trr_noise()), NOISY_ROUNDS);
        let mut outliers = SimConfig::default();
        outliers.timing.outlier_probability = 0.05;
        assert_eq!(rounds_for(&outliers), NOISY_ROUNDS);
    }

    #[test]
    fn median_suppresses_trr_spikes_at_the_noisy_rounds_budget() {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let config = SimConfig::trr_noise();
        let rounds = rounds_for(&config);
        let machine = SimMachine::from_setting(&setting, config);
        let mut p = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes))
            .with_rounds(rounds);
        let truth = p.machine().ground_truth().clone();
        let timing = p.machine().controller().config().timing;
        let a = truth.to_phys(DramAddress::new(1, 5, 0)).unwrap();
        let b = truth.to_phys(DramAddress::new(1, 700, 0)).unwrap();
        let c = truth.to_phys(DramAddress::new(4, 9, 0)).unwrap();
        for _ in 0..30 {
            assert!(p.measure_pair(a, b) > timing.oracle_threshold_ns());
            assert!(p.measure_pair(a, c) < timing.oracle_threshold_ns());
        }
    }
}
