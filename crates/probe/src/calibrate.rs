//! Latency calibration: separating row-buffer conflicts from ordinary hits.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dram_model::PAGE_SIZE;

use crate::error::ProbeError;
use crate::probe::MemoryProbe;

/// Result of calibrating a probe: the latency threshold above which a pair
/// of addresses is considered same-bank-different-row (SBDR).
///
/// Calibration samples random page-aligned address pairs (which by
/// construction fall in the same bank with probability ≈ 1/#banks), then
/// splits the observed latencies into two clusters with 1-D 2-means and uses
/// the midpoint of the cluster centres as the threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyCalibration {
    threshold_ns: u64,
    low_mean_ns: f64,
    high_mean_ns: f64,
    samples: usize,
}

impl LatencyCalibration {
    /// Calibrates by measuring `samples` random address pairs from the
    /// probe's page pool.
    ///
    /// # Errors
    ///
    /// * [`ProbeError::PoolTooSmall`] if fewer than two pages are available.
    /// * [`ProbeError::CalibrationFailed`] if the latency distribution does
    ///   not separate into two clusters (e.g. a probe that returns constant
    ///   values).
    pub fn calibrate<P: MemoryProbe>(
        probe: &mut P,
        samples: usize,
        seed: u64,
    ) -> Result<Self, ProbeError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let memory = probe.memory().clone();
        if memory.len() < 2 {
            return Err(ProbeError::PoolTooSmall {
                available: memory.len(),
                required: 2,
            });
        }
        let mut latencies = Vec::with_capacity(samples);
        for _ in 0..samples {
            let a = memory
                .random_page(&mut rng)
                .expect("pool checked to be non-empty");
            let mut b = memory
                .random_page(&mut rng)
                .expect("pool checked to be non-empty");
            if a == b {
                b = b + (PAGE_SIZE / 2);
            }
            latencies.push(probe.measure_pair(a, b));
        }
        Self::from_latencies(&latencies)
    }

    /// Calibrates adaptively: measures random pairs in chunks of
    /// `chunk_size` and stops as soon as two consecutive chunks produce a
    /// threshold within 2% of each other, instead of always paying for
    /// `max_samples` measurements.
    ///
    /// On a probe whose two latency clusters separate cleanly (every machine
    /// in Table II) the threshold converges after a small multiple of
    /// `chunk_size`, cutting the calibration phase's measurement budget by
    /// several times with the same resulting threshold quality. The full
    /// budget `max_samples` is only spent when the distribution is noisy
    /// enough to keep the estimate moving.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LatencyCalibration::calibrate`]: a too-small
    /// page pool or a latency distribution that never separates into two
    /// clusters within the budget.
    pub fn calibrate_adaptive<P: MemoryProbe>(
        probe: &mut P,
        max_samples: usize,
        chunk_size: usize,
        seed: u64,
    ) -> Result<Self, ProbeError> {
        assert!(chunk_size >= 2, "chunk size must be at least 2");
        let mut rng = StdRng::seed_from_u64(seed);
        let memory = probe.memory().clone();
        if memory.len() < 2 {
            return Err(ProbeError::PoolTooSmall {
                available: memory.len(),
                required: 2,
            });
        }
        let mut latencies = Vec::with_capacity(chunk_size * 2);
        let mut last_threshold: Option<u64> = None;
        let mut last_error = None;
        while latencies.len() < max_samples {
            let budget = chunk_size.min(max_samples - latencies.len());
            for _ in 0..budget {
                let a = memory
                    .random_page(&mut rng)
                    .expect("pool checked to be non-empty");
                let mut b = memory
                    .random_page(&mut rng)
                    .expect("pool checked to be non-empty");
                if a == b {
                    b = b + (PAGE_SIZE / 2);
                }
                latencies.push(probe.measure_pair(a, b));
            }
            match Self::from_latencies(&latencies) {
                Ok(cal) => {
                    if let Some(prev) = last_threshold {
                        let delta = cal.threshold_ns.abs_diff(prev);
                        if u128::from(delta) * 50 <= u128::from(prev) {
                            return Ok(cal);
                        }
                    }
                    last_threshold = Some(cal.threshold_ns);
                    last_error = None;
                }
                Err(e) => {
                    // Both clusters may not be represented yet; keep
                    // sampling until the budget runs out.
                    last_threshold = None;
                    last_error = Some(e);
                }
            }
        }
        match last_error {
            Some(e) => Err(e),
            None => Self::from_latencies(&latencies),
        }
    }

    /// Builds a calibration directly from a set of observed latencies.
    ///
    /// # Errors
    ///
    /// Returns [`ProbeError::CalibrationFailed`] when the sample is empty or
    /// the two clusters are not separated by at least 10% of the low mean.
    pub fn from_latencies(latencies: &[u64]) -> Result<Self, ProbeError> {
        if latencies.is_empty() {
            return Err(ProbeError::CalibrationFailed {
                reason: "no latency samples".into(),
            });
        }
        let min = *latencies.iter().min().expect("non-empty") as f64;
        let max = *latencies.iter().max().expect("non-empty") as f64;
        if max - min < 1.0 {
            return Err(ProbeError::CalibrationFailed {
                reason: "all latency samples are identical".into(),
            });
        }
        // 1-D 2-means clustering, initialised at the extremes.
        let mut low = min;
        let mut high = max;
        for _ in 0..32 {
            let mid = (low + high) / 2.0;
            let (mut low_sum, mut low_n, mut high_sum, mut high_n) = (0.0f64, 0u64, 0.0f64, 0u64);
            for &l in latencies {
                let l = l as f64;
                if l < mid {
                    low_sum += l;
                    low_n += 1;
                } else {
                    high_sum += l;
                    high_n += 1;
                }
            }
            if low_n == 0 || high_n == 0 {
                break;
            }
            let new_low = low_sum / low_n as f64;
            let new_high = high_sum / high_n as f64;
            if (new_low - low).abs() < 0.5 && (new_high - high).abs() < 0.5 {
                low = new_low;
                high = new_high;
                break;
            }
            low = new_low;
            high = new_high;
        }
        if high - low < low * 0.10 {
            return Err(ProbeError::CalibrationFailed {
                reason: format!("latency clusters not separated (low {low:.1}, high {high:.1})"),
            });
        }
        Ok(LatencyCalibration {
            threshold_ns: ((low + high) / 2.0).round() as u64,
            low_mean_ns: low,
            high_mean_ns: high,
            samples: latencies.len(),
        })
    }

    /// Builds a calibration from a known threshold (oracle threshold in
    /// tests, or a user-supplied value on hardware).
    pub fn from_threshold(threshold_ns: u64) -> Self {
        LatencyCalibration {
            threshold_ns,
            low_mean_ns: threshold_ns as f64 * 0.8,
            high_mean_ns: threshold_ns as f64 * 1.2,
            samples: 0,
        }
    }

    /// The conflict threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// Mean latency of the non-conflict (row hit) cluster.
    pub fn low_mean_ns(&self) -> f64 {
        self.low_mean_ns
    }

    /// Mean latency of the conflict cluster.
    pub fn high_mean_ns(&self) -> f64 {
        self.high_mean_ns
    }

    /// Number of samples used during calibration.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Classifies a measured latency: `true` means row-buffer conflict
    /// (same bank, different rows).
    pub fn is_conflict(&self, latency_ns: u64) -> bool {
        latency_ns >= self.threshold_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_probe::SimProbe;
    use dram_model::MachineSetting;
    use dram_sim::{PhysMemory, SimConfig, SimMachine};

    #[test]
    fn from_latencies_separates_two_clusters() {
        let mut samples = vec![200u64; 90];
        samples.extend(vec![380u64; 10]);
        let cal = LatencyCalibration::from_latencies(&samples).unwrap();
        assert!(cal.threshold_ns() > 200 && cal.threshold_ns() < 380);
        assert!(cal.is_conflict(380));
        assert!(!cal.is_conflict(200));
        assert_eq!(cal.samples(), 100);
        assert!(cal.low_mean_ns() < cal.high_mean_ns());
    }

    #[test]
    fn from_latencies_rejects_degenerate_input() {
        assert!(LatencyCalibration::from_latencies(&[]).is_err());
        assert!(LatencyCalibration::from_latencies(&[250; 50]).is_err());
        // Two values that are too close together to be separate clusters.
        let mut close = vec![250u64; 50];
        close.extend(vec![255u64; 50]);
        assert!(LatencyCalibration::from_latencies(&close).is_err());
    }

    #[test]
    fn from_threshold_is_direct() {
        let cal = LatencyCalibration::from_threshold(300);
        assert_eq!(cal.threshold_ns(), 300);
        assert!(cal.is_conflict(300));
        assert!(!cal.is_conflict(299));
    }

    #[test]
    fn calibrate_on_simulated_machine_brackets_true_latencies() {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let machine = SimMachine::from_setting(&setting, SimConfig::default());
        let timing = machine.controller().config().timing;
        // A modest pool is plenty: random page pairs hit the same bank with
        // probability 1/8 on this machine.
        let memory = PhysMemory::full(256 << 20);
        let mut probe = SimProbe::new(machine, memory);
        let cal = LatencyCalibration::calibrate(&mut probe, 400, 11).unwrap();
        assert!(cal.threshold_ns() > timing.row_hit_ns);
        assert!(cal.threshold_ns() < timing.row_conflict_ns);
    }

    #[test]
    fn adaptive_calibration_converges_early_with_same_quality() {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let machine = SimMachine::from_setting(&setting, SimConfig::default());
        let timing = machine.controller().config().timing;
        let memory = PhysMemory::full(256 << 20);
        let mut probe = SimProbe::new(machine, memory);
        let before = probe.stats().measurements;
        let cal = LatencyCalibration::calibrate_adaptive(&mut probe, 400, 40, 11).unwrap();
        let spent = probe.stats().measurements - before;
        assert!(cal.threshold_ns() > timing.row_hit_ns);
        assert!(cal.threshold_ns() < timing.row_conflict_ns);
        assert!(
            spent < 400,
            "adaptive calibration should converge before the full budget ({spent})"
        );
    }

    #[test]
    fn adaptive_calibration_propagates_degenerate_distributions() {
        // A one-bank pool cannot be built here, but an exhausted budget over
        // a pool too small to sample still errors out cleanly.
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let machine = SimMachine::from_setting(&setting, SimConfig::default());
        let memory = PhysMemory::from_frames(vec![1], 16);
        let mut probe = SimProbe::new(machine, memory);
        assert!(matches!(
            LatencyCalibration::calibrate_adaptive(&mut probe, 40, 10, 0),
            Err(ProbeError::PoolTooSmall { .. })
        ));
    }

    #[test]
    fn calibrate_rejects_tiny_pool() {
        let setting = MachineSetting::no4_haswell_ddr3_4g();
        let machine = SimMachine::from_setting(&setting, SimConfig::default());
        let memory = PhysMemory::from_frames(vec![1], 16);
        let mut probe = SimProbe::new(machine, memory);
        assert!(matches!(
            LatencyCalibration::calibrate(&mut probe, 10, 0),
            Err(ProbeError::PoolTooSmall { .. })
        ));
    }
}
