//! Property tests of the dead-letter queue lifecycle: retry exhaustion in a
//! real pool drain lands jobs on the DLQ with their full attempt ledger, a
//! `retry` requeue re-enters the attempt ladder one past the dead-lettered
//! attempt (and therefore draws a fresh attempt-derived seed), a `reprocess`
//! requeue wipes the slate so a fixed job completes from attempt 1, and the
//! journal replay that backs all of it folds any worker interleaving of the
//! record stream to the same DLQ state.

use proptest::prelude::*;

use campaign::mapreduce::GenJob;
use campaign::{
    dead_letters, render_dlq, Attempt, JournalRecord, JournalState, Lease, NoHooks, PoolConfig,
    Profile, RequeueMode,
};

/// One job's scripted behaviour: fail this many attempts, then succeed.
#[derive(Debug, Clone, Copy)]
struct Script {
    fails_first: u32,
}

/// Drains `scripts` through the real pool and journals what a coordinator
/// would: `Started` write-ahead plus the `Completed`/`Failed`/`Dead` outcome
/// per attempt. Returns the record stream in append order.
fn drain_scripted(scripts: &[Script], max_retries: u32, workers: usize) -> Vec<JournalRecord> {
    let jobs = scripts
        .iter()
        .enumerate()
        .map(|(i, script)| Lease::new((format!("job-{i:02}"), *script), 1));
    let config = PoolConfig {
        workers,
        max_retries,
        max_completions: None,
    };
    let records = std::sync::Mutex::new(Vec::new());
    let contexts: Vec<()> = vec![(); workers.max(1)];
    let outcome = campaign::drain_pool_ctx(
        jobs,
        &config,
        &mut NoHooks,
        contexts,
        |_: &mut (), (id, script): &(String, Script), attempt| {
            records.lock().unwrap().push(JournalRecord::Started {
                job: id.clone(),
                attempt,
            });
            let result = if attempt <= script.fails_first {
                Attempt::Failed(format!("scripted failure {attempt}"))
            } else {
                Attempt::Completed(attempt)
            };
            match &result {
                Attempt::Completed(_) => records.lock().unwrap().push(JournalRecord::Completed {
                    job: id.clone(),
                    attempt,
                    report: report(),
                }),
                Attempt::Failed(reason) => {
                    let record = if attempt > max_retries {
                        JournalRecord::Dead {
                            job: id.clone(),
                            attempts: attempt,
                            reason: reason.clone(),
                        }
                    } else {
                        JournalRecord::Failed {
                            job: id.clone(),
                            attempt,
                            reason: reason.clone(),
                        }
                    };
                    records.lock().unwrap().push(record);
                }
                Attempt::Interrupted(_) => unreachable!("scripts never interrupt"),
            }
            Ok::<_, std::convert::Infallible>(result)
        },
    )
    .expect("infallible hooks");
    // The pool's own verdicts must agree with what was journaled.
    assert_eq!(
        outcome.completed.len() + outcome.dead.len(),
        scripts.len(),
        "every scripted job settles"
    );
    records.into_inner().unwrap()
}

fn report() -> dramdig::RecoveryReport {
    use dramdig::driver::{Phase, PhaseCosts};
    let setting = dram_model::MachineSetting::by_number(4).expect("machine 4 exists");
    dramdig::RecoveryReport {
        mapping: setting.mapping().clone(),
        pool_size: 100,
        pile_count: 8,
        threshold_ns: 290,
        row_remap: None,
        validation_agreement: Some(0.95),
        phase_costs: vec![(Phase::Partition, PhaseCosts::default())],
        total: PhaseCosts::default(),
    }
}

/// Merges per-job sequences using `choices` to pick which job's next record
/// goes out — an arbitrary worker interleaving that preserves per-job order.
fn interleave(mut sequences: Vec<Vec<JournalRecord>>, choices: &[usize]) -> Vec<JournalRecord> {
    for seq in &mut sequences {
        seq.reverse(); // pop from the back
    }
    let mut merged = Vec::new();
    let mut choices = choices.iter().copied().cycle();
    while sequences.iter().any(|s| !s.is_empty()) {
        let alive: Vec<usize> = (0..sequences.len())
            .filter(|&i| !sequences[i].is_empty())
            .collect();
        let pick = alive[choices.next().unwrap_or(0) % alive.len()];
        merged.push(sequences[pick].pop().expect("alive sequence"));
    }
    merged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn retry_exhaustion_lands_on_the_dlq_with_the_full_ledger(
        scripts in proptest::collection::vec(
            (0u32..5).prop_map(|fails_first| Script { fails_first }),
            1..8,
        ),
        max_retries in 0u32..3,
        workers in 1usize..4,
    ) {
        let records = drain_scripted(&scripts, max_retries, workers);
        let state = JournalState::replay(&records);
        let letters = dead_letters(&state);
        // Exactly the scripts that out-fail the retry budget dead-letter,
        // each with attempts = budget + 1 (every attempt was made).
        let expected_dead: Vec<String> = scripts
            .iter()
            .enumerate()
            .filter(|(_, s)| s.fails_first > max_retries)
            .map(|(i, _)| format!("job-{i:02}"))
            .collect();
        prop_assert_eq!(
            letters.iter().map(|l| l.job.clone()).collect::<Vec<_>>(),
            expected_dead.clone(),
            "DLQ lists exactly the retry-exhausted jobs, in job-id order"
        );
        for letter in &letters {
            prop_assert_eq!(letter.attempts, max_retries + 1);
            prop_assert!(letter.reason.starts_with("scripted failure"));
        }
        // Everything else completed at one past its scripted failures.
        for (i, script) in scripts.iter().enumerate() {
            let id = format!("job-{i:02}");
            if script.fails_first <= max_retries {
                prop_assert!(state.completed.contains_key(&id));
            }
        }
        // The rendered artifact lists the same jobs, one line each.
        let rendered = render_dlq(&state);
        let count_line = format!("# jobs = {}", expected_dead.len());
        prop_assert!(rendered.contains(&count_line));
        for id in &expected_dead {
            let line = format!("job {id} attempts=");
            prop_assert!(rendered.contains(&line));
        }
    }

    #[test]
    fn retry_requeue_reenters_the_ladder_with_a_fresh_seed(
        index in 0u32..2000,
        seed in 1u64..1000,
        attempts in 1u32..6,
    ) {
        let job_id = format!("job-{index:04}");
        let records = vec![
            JournalRecord::Started { job: job_id.clone(), attempt: attempts },
            JournalRecord::Dead {
                job: job_id.clone(),
                attempts,
                reason: "exhausted".into(),
            },
            JournalRecord::Requeued { job: job_id.clone(), mode: RequeueMode::Retry },
        ];
        let state = JournalState::replay(&records);
        prop_assert!(state.dead.is_empty(), "retry clears the dead letter");
        prop_assert!(dead_letters(&state).is_empty());
        // The ladder continues one past the dead-lettered attempt...
        prop_assert_eq!(state.next_attempt(&job_id), attempts + 1);
        // ...which draws an attempt-derived seed distinct from every seed
        // the job already burned.
        let job = GenJob {
            index,
            seed,
            profile: Profile::Fast,
        };
        let fresh = job.attempt_seed(attempts + 1);
        for burned in 1..=attempts {
            prop_assert_ne!(fresh, job.attempt_seed(burned));
        }
    }

    #[test]
    fn reprocess_requeue_wipes_the_slate_and_the_job_completes(
        attempts in 1u32..6,
        fixed_succeeds in any::<bool>(),
    ) {
        let job_id = "job-00".to_string();
        let mut records = vec![
            JournalRecord::Started { job: job_id.clone(), attempt: attempts },
            JournalRecord::Checkpoint { job: job_id.clone(), path: "ckpt/job-00".into() },
            JournalRecord::Dead {
                job: job_id.clone(),
                attempts,
                reason: "bad config".into(),
            },
            JournalRecord::Requeued { job: job_id.clone(), mode: RequeueMode::Reprocess },
        ];
        let state = JournalState::replay(&records);
        prop_assert!(state.dead.is_empty());
        prop_assert_eq!(
            state.next_attempt(&job_id), 1,
            "reprocess restarts at attempt 1 (base seed)"
        );
        prop_assert!(
            !state.checkpoints.contains_key(&job_id),
            "stale checkpoints from the broken run are dropped"
        );
        // After the operator's fix, the re-run settles the job for good.
        records.push(JournalRecord::Started { job: job_id.clone(), attempt: 1 });
        if fixed_succeeds {
            records.push(JournalRecord::Completed {
                job: job_id.clone(),
                attempt: 1,
                report: report(),
            });
        } else {
            records.push(JournalRecord::Dead {
                job: job_id.clone(),
                attempts: 1,
                reason: "still broken".into(),
            });
        }
        let settled = JournalState::replay(&records);
        if fixed_succeeds {
            prop_assert!(settled.completed.contains_key(&job_id));
            prop_assert!(settled.dead.is_empty());
        } else {
            prop_assert_eq!(dead_letters(&settled).len(), 1);
            prop_assert_eq!(settled.dead_attempts[&job_id], 1, "the old ledger stays wiped");
        }
    }

    #[test]
    fn dlq_state_is_reproduced_order_independently(
        fates in proptest::collection::vec((1u32..4, 0u8..3), 1..6),
        choices in proptest::collection::vec(0usize..16, 1..48),
    ) {
        // Per-job lifecycle: fail to death, then (maybe) a requeue.
        let sequences: Vec<Vec<JournalRecord>> = fates
            .iter()
            .enumerate()
            .map(|(i, (attempts, after))| {
                let job = format!("job-{i:02}");
                let mut seq = vec![
                    JournalRecord::Started { job: job.clone(), attempt: *attempts },
                    JournalRecord::Dead {
                        job: job.clone(),
                        attempts: *attempts,
                        reason: format!("failure of {job}"),
                    },
                ];
                match after {
                    0 => {}
                    1 => seq.push(JournalRecord::Requeued {
                        job,
                        mode: RequeueMode::Retry,
                    }),
                    _ => seq.push(JournalRecord::Requeued {
                        job,
                        mode: RequeueMode::Reprocess,
                    }),
                }
                seq
            })
            .collect();
        let canonical: Vec<JournalRecord> = sequences.iter().flatten().cloned().collect();
        let shuffled = interleave(sequences, &choices);
        let a = JournalState::replay(&canonical);
        let b = JournalState::replay(&shuffled);
        prop_assert_eq!(&a, &b, "DLQ state must not depend on append interleaving");
        prop_assert_eq!(dead_letters(&a), dead_letters(&b));
        prop_assert_eq!(render_dlq(&a), render_dlq(&b));
        // Replay is idempotent under a duplicated record stream (crash
        // between append and fsync can double a line).
        let doubled: Vec<JournalRecord> = canonical
            .iter()
            .flat_map(|r| [r.clone(), r.clone()])
            .collect();
        prop_assert_eq!(&JournalState::replay(&doubled), &a);
        // Only the never-requeued jobs remain listed.
        for (i, (_, after)) in fates.iter().enumerate() {
            let job = format!("job-{i:02}");
            prop_assert_eq!(a.dead.contains_key(&job), *after == 0);
        }
    }
}
