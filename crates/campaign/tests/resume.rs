//! The acceptance test of the campaign subsystem: a campaign over all nine
//! Table-II machines, interrupted mid-run and resumed, recovers exactly the
//! same nine mappings — and writes byte-identical store artifacts — as an
//! uninterrupted run.

use campaign::{
    campaign_status, run_campaign, run_job_sim_checkpointed_with, run_job_sim_with,
    CampaignOptions, CampaignPaths, CampaignSpec, JobSpec, Profile,
};
use dram_model::{MachineSetting, XorFunc};
use dram_sim::{PhysMemory, SimConfig, SimMachine};
use dramdig::engine::{EngineOptions, NullObserver, PipelineEngine};
use dramdig::{DomainKnowledge, DramDigConfig, Phase, RecoveryReport};
use mem_probe::SimProbe;

/// The optimized profile with test-sized calibration/validation budgets:
/// same recovered mappings, far fewer measurements (this test runs the full
/// pipeline 18 times in debug mode).
fn test_runner(
    job: &JobSpec,
    attempt: u32,
    _checkpoint: Option<&std::path::Path>,
) -> Result<RecoveryReport, String> {
    let config = DramDigConfig {
        calibration_samples: 200,
        validation_samples: 32,
        ..DramDigConfig::optimized()
    };
    run_job_sim_with(job, attempt, config)
}

fn temp_paths(tag: &str) -> CampaignPaths {
    let dir = std::env::temp_dir().join(format!("dramdig-resume-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    CampaignPaths::new(dir)
}

#[test]
fn interrupted_and_resumed_campaign_matches_an_uninterrupted_one() {
    let spec = CampaignSpec::new((1..=9).collect(), 1, Profile::Optimized);

    // --- Interrupted run: stop after 4 completions, then resume. ----------
    let interrupted = temp_paths("interrupted");
    let first = run_campaign(
        &spec,
        &interrupted,
        &CampaignOptions::default()
            .with_workers(2)
            .with_max_completions(4),
        test_runner,
    )
    .unwrap();
    assert!(
        first.state.completed.len() < 9,
        "the interruption must land mid-campaign ({} completed)",
        first.state.completed.len()
    );
    let mid_status = campaign_status(&spec, &interrupted).unwrap();
    assert!(!mid_status.pending.is_empty());
    assert_eq!(
        mid_status.completed + mid_status.pending.len(),
        9,
        "no job may be lost at the interruption point"
    );

    let resumed = run_campaign(
        &spec,
        &interrupted,
        &CampaignOptions::default().with_workers(4),
        test_runner,
    )
    .unwrap();
    assert_eq!(resumed.state.completed.len(), 9);
    assert!(resumed.dead.is_empty());
    // The resume only ran what the interruption left behind.
    assert_eq!(
        first.state.completed.len() + resumed.completed.len(),
        9,
        "resume must not re-run completed jobs"
    );

    // --- Uninterrupted reference run. -------------------------------------
    let straight = temp_paths("straight");
    let reference =
        run_campaign(&spec, &straight, &CampaignOptions::serial(), test_runner).unwrap();
    assert_eq!(reference.state.completed.len(), 9);

    // --- Same nine mappings, same artifacts. ------------------------------
    for (job_id, report) in &reference.state.completed {
        let resumed_report = &resumed.state.completed[job_id];
        assert_eq!(
            resumed_report.mapping, report.mapping,
            "{job_id} must recover the same mapping either way"
        );
        let machine: u8 = job_id
            .strip_prefix('m')
            .and_then(|r| r.split('-').next())
            .and_then(|n| n.parse().ok())
            .unwrap();
        let setting = MachineSetting::by_number(machine).unwrap();
        assert!(
            report.mapping.equivalent_to(setting.mapping()),
            "{job_id} must match the Table-II ground truth"
        );
    }
    assert_eq!(resumed.store.encode(), reference.store.encode());
    let on_disk_interrupted = std::fs::read_to_string(interrupted.store()).unwrap();
    let on_disk_straight = std::fs::read_to_string(straight.store()).unwrap();
    assert_eq!(on_disk_interrupted, on_disk_straight);

    // Nine machines, eight distinct mappings (No.6 and No.9 share one), and
    // the component-function query sees across jobs.
    assert_eq!(reference.store.len(), 8);
    let sharing = reference
        .store
        .machines_sharing(XorFunc::from_bits(&[14, 18]));
    assert_eq!(
        sharing.into_iter().collect::<Vec<_>>(),
        vec!["No.2", "No.3", "No.5"]
    );

    // Campaign totals merge per-job costs without double counting.
    let sum: u64 = reference
        .state
        .completed
        .values()
        .map(|r| r.total.measurements)
        .sum();
    assert_eq!(reference.totals.measurements, sum);
    assert!(
        reference.totals.cache_hits + reference.totals.cache_misses > 0,
        "the optimized profile routes SBDR queries through the cache"
    );

    // The fleet makespan model: 4 parallel machines beat 1 by >= 2x.
    let serial = reference.simulated_makespan(1);
    let four = reference.simulated_makespan(4);
    assert!(
        serial / four >= 2.0,
        "fleet speedup at 4 workers was only {:.2}x",
        serial / four
    );

    std::fs::remove_dir_all(interrupted.dir()).unwrap();
    std::fs::remove_dir_all(straight.dir()).unwrap();
}

#[test]
fn mid_pipeline_kill_resumes_at_the_phase_boundary_with_identical_report() {
    // One job, killed mid-pipeline on its first attempt (the worker process
    // dies after the Partition phase — emulated with the engine's
    // deterministic stop point while checkpoints land in the directory the
    // orchestrator handed out). The retry resumes the *same* attempt from
    // its surviving artifacts: zero partition measurements are repaid and
    // the final report is byte-identical to a never-interrupted run.
    let spec = CampaignSpec::new(vec![4], 1, Profile::Fast);
    let paths = temp_paths("phase-resume");
    let config = DramDigConfig::fast();

    let kill_first = |job: &JobSpec, attempt: u32, checkpoint: Option<&std::path::Path>| {
        if attempt == 1 {
            // Emulate the kill: run the engine exactly like the sim runner
            // would, but die after Partition. The checkpoint dir keeps the
            // completed phases.
            let dir = checkpoint.expect("orchestrator hands out a checkpoint dir");
            let setting = MachineSetting::by_number(job.machine).unwrap();
            let seed = job.attempt_seed(attempt);
            let machine = SimMachine::from_setting(&setting, SimConfig::default().with_seed(seed));
            let mut probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
            let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
            let err = PipelineEngine::new(knowledge, config.clone().with_seed(seed))
                .run(
                    &mut probe,
                    &EngineOptions::default()
                        .with_checkpoint(dir)
                        .with_stop_after(Phase::Partition),
                    &mut NullObserver,
                )
                .unwrap_err();
            Err(err.to_string())
        } else {
            run_job_sim_checkpointed_with(job, attempt, config.clone(), checkpoint)
        }
    };
    let outcome = run_campaign(
        &spec,
        &paths,
        &CampaignOptions::serial().with_phase_checkpoints(true),
        kill_first,
    )
    .unwrap();
    assert_eq!(outcome.completed.len(), 1);
    assert_eq!(
        outcome.completed[0].attempt, 2,
        "the killed attempt burns, the retry resumes its artifacts"
    );
    let resumed_report = &outcome.completed[0].report;

    // Reference: the same job, same attempt-1 seed, never interrupted.
    let job = spec.jobs().remove(0);
    let straight = run_job_sim_with(&job, 1, config.clone()).unwrap();
    assert_eq!(
        resumed_report.encode(),
        straight.encode(),
        "kill + phase resume must be byte-identical to straight-through"
    );
    // Zero partition measurements were repaid: the resumed attempt's costs
    // are the checkpointed ones, and the journal shows the checkpoint path.
    assert!(resumed_report
        .phase_costs
        .iter()
        .any(|(p, c)| { *p == Phase::Partition && c.measurements > 0 }));
    assert_eq!(
        outcome.state.checkpoints[&job.id()],
        paths.job_checkpoint(&job).to_string_lossy()
    );
    assert!(
        !paths.job_checkpoint(&job).exists(),
        "completed jobs clean their checkpoint directory"
    );
    std::fs::remove_dir_all(paths.dir()).unwrap();
}

#[test]
fn real_failures_wipe_checkpoints_so_retries_reseed() {
    // A genuine pipeline failure (ablated system info -> no bank count)
    // must not leave artifacts behind for the retry to half-trust.
    let spec = CampaignSpec {
        machines: vec![4],
        seeds: vec![1],
        profiles: vec![Profile::Fast],
        ablations: vec![Some(campaign::Ablation::SystemInfo)],
        max_retries: 0,
    };
    let paths = temp_paths("wipe");
    let outcome = run_campaign(
        &spec,
        &paths,
        &CampaignOptions::serial().with_phase_checkpoints(true),
        |job, attempt, checkpoint| {
            run_job_sim_checkpointed_with(job, attempt, DramDigConfig::fast(), checkpoint)
        },
    )
    .unwrap();
    assert_eq!(outcome.dead.len(), 1);
    let job = spec.jobs().remove(0);
    assert!(!paths.job_checkpoint(&job).exists());
    std::fs::remove_dir_all(paths.dir()).unwrap();
}

#[test]
fn ablated_jobs_dead_letter_through_the_sim_runner() {
    let mut spec = CampaignSpec {
        machines: vec![4],
        seeds: vec![1],
        profiles: vec![Profile::Optimized],
        ablations: vec![None, Some(campaign::Ablation::SystemInfo)],
        max_retries: 1,
    };
    spec.max_retries = 1;
    let paths = temp_paths("ablate");
    let outcome = run_campaign(&spec, &paths, &CampaignOptions::serial(), test_runner).unwrap();
    assert_eq!(outcome.completed.len(), 1);
    assert_eq!(
        outcome.dead.len(),
        1,
        "no system info -> no bank count -> dead letter"
    );
    let (dead_job, reason) = &outcome.dead[0];
    assert_eq!(dead_job.id(), "m4-s1-optimized-sysinfo");
    assert!(!reason.is_empty());
    // The store only holds the successful job.
    assert_eq!(outcome.store.len(), 1);
    let status = campaign_status(&spec, &paths).unwrap();
    assert_eq!(status.dead.len(), 1);
    assert_eq!(status.distinct_mappings, 1);
    std::fs::remove_dir_all(paths.dir()).unwrap();
}
