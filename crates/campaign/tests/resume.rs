//! The acceptance test of the campaign subsystem: a campaign over all nine
//! Table-II machines, interrupted mid-run and resumed, recovers exactly the
//! same nine mappings — and writes byte-identical store artifacts — as an
//! uninterrupted run.

use campaign::{
    campaign_status, run_campaign, run_job_sim_with, CampaignOptions, CampaignPaths, CampaignSpec,
    JobSpec, Profile,
};
use dram_model::{MachineSetting, XorFunc};
use dramdig::{DramDigConfig, RecoveryReport};

/// The optimized profile with test-sized calibration/validation budgets:
/// same recovered mappings, far fewer measurements (this test runs the full
/// pipeline 18 times in debug mode).
fn test_runner(job: &JobSpec, attempt: u32) -> Result<RecoveryReport, String> {
    let config = DramDigConfig {
        calibration_samples: 200,
        validation_samples: 32,
        ..DramDigConfig::optimized()
    };
    run_job_sim_with(job, attempt, config)
}

fn temp_paths(tag: &str) -> CampaignPaths {
    let dir = std::env::temp_dir().join(format!("dramdig-resume-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    CampaignPaths::new(dir)
}

#[test]
fn interrupted_and_resumed_campaign_matches_an_uninterrupted_one() {
    let spec = CampaignSpec::new((1..=9).collect(), 1, Profile::Optimized);

    // --- Interrupted run: stop after 4 completions, then resume. ----------
    let interrupted = temp_paths("interrupted");
    let first = run_campaign(
        &spec,
        &interrupted,
        &CampaignOptions::default()
            .with_workers(2)
            .with_max_completions(4),
        test_runner,
    )
    .unwrap();
    assert!(
        first.state.completed.len() < 9,
        "the interruption must land mid-campaign ({} completed)",
        first.state.completed.len()
    );
    let mid_status = campaign_status(&spec, &interrupted).unwrap();
    assert!(!mid_status.pending.is_empty());
    assert_eq!(
        mid_status.completed + mid_status.pending.len(),
        9,
        "no job may be lost at the interruption point"
    );

    let resumed = run_campaign(
        &spec,
        &interrupted,
        &CampaignOptions::default().with_workers(4),
        test_runner,
    )
    .unwrap();
    assert_eq!(resumed.state.completed.len(), 9);
    assert!(resumed.dead.is_empty());
    // The resume only ran what the interruption left behind.
    assert_eq!(
        first.state.completed.len() + resumed.completed.len(),
        9,
        "resume must not re-run completed jobs"
    );

    // --- Uninterrupted reference run. -------------------------------------
    let straight = temp_paths("straight");
    let reference =
        run_campaign(&spec, &straight, &CampaignOptions::serial(), test_runner).unwrap();
    assert_eq!(reference.state.completed.len(), 9);

    // --- Same nine mappings, same artifacts. ------------------------------
    for (job_id, report) in &reference.state.completed {
        let resumed_report = &resumed.state.completed[job_id];
        assert_eq!(
            resumed_report.mapping, report.mapping,
            "{job_id} must recover the same mapping either way"
        );
        let machine: u8 = job_id
            .strip_prefix('m')
            .and_then(|r| r.split('-').next())
            .and_then(|n| n.parse().ok())
            .unwrap();
        let setting = MachineSetting::by_number(machine).unwrap();
        assert!(
            report.mapping.equivalent_to(setting.mapping()),
            "{job_id} must match the Table-II ground truth"
        );
    }
    assert_eq!(resumed.store.encode(), reference.store.encode());
    let on_disk_interrupted = std::fs::read_to_string(interrupted.store()).unwrap();
    let on_disk_straight = std::fs::read_to_string(straight.store()).unwrap();
    assert_eq!(on_disk_interrupted, on_disk_straight);

    // Nine machines, eight distinct mappings (No.6 and No.9 share one), and
    // the component-function query sees across jobs.
    assert_eq!(reference.store.len(), 8);
    let sharing = reference
        .store
        .machines_sharing(XorFunc::from_bits(&[14, 18]));
    assert_eq!(
        sharing.into_iter().collect::<Vec<_>>(),
        vec!["No.2", "No.3", "No.5"]
    );

    // Campaign totals merge per-job costs without double counting.
    let sum: u64 = reference
        .state
        .completed
        .values()
        .map(|r| r.total.measurements)
        .sum();
    assert_eq!(reference.totals.measurements, sum);
    assert!(
        reference.totals.cache_hits + reference.totals.cache_misses > 0,
        "the optimized profile routes SBDR queries through the cache"
    );

    // The fleet makespan model: 4 parallel machines beat 1 by >= 2x.
    let serial = reference.simulated_makespan(1);
    let four = reference.simulated_makespan(4);
    assert!(
        serial / four >= 2.0,
        "fleet speedup at 4 workers was only {:.2}x",
        serial / four
    );

    std::fs::remove_dir_all(interrupted.dir()).unwrap();
    std::fs::remove_dir_all(straight.dir()).unwrap();
}

#[test]
fn ablated_jobs_dead_letter_through_the_sim_runner() {
    let mut spec = CampaignSpec {
        machines: vec![4],
        seeds: vec![1],
        profiles: vec![Profile::Optimized],
        ablations: vec![None, Some(campaign::Ablation::SystemInfo)],
        max_retries: 1,
    };
    spec.max_retries = 1;
    let paths = temp_paths("ablate");
    let outcome = run_campaign(&spec, &paths, &CampaignOptions::serial(), test_runner).unwrap();
    assert_eq!(outcome.completed.len(), 1);
    assert_eq!(
        outcome.dead.len(),
        1,
        "no system info -> no bank count -> dead letter"
    );
    let (dead_job, reason) = &outcome.dead[0];
    assert_eq!(dead_job.id(), "m4-s1-optimized-sysinfo");
    assert!(!reason.is_empty());
    // The store only holds the successful job.
    assert_eq!(outcome.store.len(), 1);
    let status = campaign_status(&spec, &paths).unwrap();
    assert_eq!(status.dead.len(), 1);
    assert_eq!(status.distinct_mappings, 1);
    std::fs::remove_dir_all(paths.dir()).unwrap();
}
