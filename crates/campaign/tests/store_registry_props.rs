//! Property: exporting a campaign's mapping store into the sharded on-disk
//! registry and loading it back reproduces the store exactly — the import
//! path (`dramdig registry import`) loses nothing and invents nothing, for
//! any mix of machines, basis presentations and shard counts.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use campaign::{MappingStore, Provenance};
use dram_model::{AddressMapping, MachineSetting, XorFunc};
use registry::DiskRegistry;

static CASE: AtomicU64 = AtomicU64::new(0);

/// A machine's mapping presented under a basis variant (XOR-folding
/// adjacent functions): same GF(2) span, different rows.
fn variant_mapping(machine: u8, v: u8) -> AddressMapping {
    let mapping = MachineSetting::by_number(machine)
        .unwrap()
        .mapping()
        .clone();
    let mut funcs: Vec<XorFunc> = mapping.bank_funcs().to_vec();
    for i in 0..usize::from(v).min(funcs.len().saturating_sub(1)) {
        funcs[i] = funcs[i].combine(funcs[i + 1]);
    }
    AddressMapping::new(
        funcs,
        mapping.row_bits().to_vec(),
        mapping.column_bits().to_vec(),
    )
    .expect("basis change keeps the mapping valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn imported_registry_reproduces_the_store(
        jobs in proptest::collection::vec((1u8..=9, 0u8..4), 1..10),
        shards in 1u32..8,
    ) {
        let mut store = MappingStore::new();
        for (i, (machine, v)) in jobs.iter().enumerate() {
            store.insert(
                &variant_mapping(*machine, *v),
                Provenance {
                    machine: format!("No.{machine}"),
                    job: format!("m{machine}-s{i}-fast"),
                },
            );
        }

        // Export → sharded disk registry → reopen → load.
        let dir = std::env::temp_dir().join(format!(
            "dramdig-campaign-import-props-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut disk = DiskRegistry::create(&dir, shards).unwrap();
        disk.append(&store.records()).unwrap();
        let mem = DiskRegistry::open(&dir).unwrap().load().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();

        // The loaded registry is the store's registry, entry for entry.
        prop_assert_eq!(&mem, store.registry());
        // Folding the loaded entries back into a MappingStore reproduces
        // the store's canonical byte encoding — the resume-identity format.
        let mut rebuilt = MappingStore::new();
        for entry in mem.entries() {
            for source in &entry.sources {
                rebuilt.insert(&entry.mapping, source.clone());
            }
        }
        prop_assert_eq!(rebuilt.encode(), store.encode());
    }
}
