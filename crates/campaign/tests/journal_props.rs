//! Property tests of the campaign's durability layer: journal replay folds
//! any worker interleaving to the same resume frontier, journal lines
//! round-trip through the hand-rolled JSONL codec, and the mapping store is
//! insertion-order independent.

use proptest::prelude::*;

use campaign::{JournalRecord, JournalState, MappingStore, Provenance};
use dram_model::{gf2::Gf2Matrix, AddressMapping, MachineSetting, XorFunc};
use dramdig::driver::{Phase, PhaseCosts};
use dramdig::RecoveryReport;

fn report_for(machine: u8) -> RecoveryReport {
    let setting = MachineSetting::by_number(machine).expect("1..=9");
    RecoveryReport {
        mapping: setting.mapping().clone(),
        pool_size: 100 + usize::from(machine),
        pile_count: 8,
        threshold_ns: 290,
        row_remap: None,
        validation_agreement: Some(0.95),
        phase_costs: vec![(
            Phase::Partition,
            PhaseCosts {
                measurements: u64::from(machine) * 7,
                accesses: 2,
                elapsed_ns: 3,
                cache_hits: 1,
                cache_misses: 2,
            },
        )],
        total: PhaseCosts {
            measurements: u64::from(machine) * 7,
            accesses: 2,
            elapsed_ns: 3,
            cache_hits: 1,
            cache_misses: 2,
        },
    }
}

/// What ultimately happens to one job, as (failures-before-outcome, kind).
#[derive(Debug, Clone, Copy)]
enum Fate {
    /// `failures` failed attempts, then success.
    Completed { failures: u32 },
    /// `attempts` failed attempts, then dead-lettered.
    Dead { attempts: u32 },
    /// `failures` failed attempts so far, still pending.
    Pending { failures: u32 },
}

/// The per-job record sequence a worker would journal for this fate.
fn records_for(job: &str, machine: u8, fate: Fate) -> Vec<JournalRecord> {
    let mut records = Vec::new();
    let failures = match fate {
        Fate::Completed { failures } | Fate::Pending { failures } => failures,
        Fate::Dead { attempts } => attempts.saturating_sub(1),
    };
    for attempt in 1..=failures {
        records.push(JournalRecord::Started {
            job: job.to_string(),
            attempt,
        });
        records.push(JournalRecord::Failed {
            job: job.to_string(),
            attempt,
            reason: format!("noise on attempt {attempt}"),
        });
    }
    match fate {
        Fate::Completed { failures } => {
            records.push(JournalRecord::Started {
                job: job.to_string(),
                attempt: failures + 1,
            });
            records.push(JournalRecord::Completed {
                job: job.to_string(),
                attempt: failures + 1,
                report: report_for(machine),
            });
        }
        Fate::Dead { attempts } => {
            records.push(JournalRecord::Started {
                job: job.to_string(),
                attempt: attempts.max(1),
            });
            records.push(JournalRecord::Dead {
                job: job.to_string(),
                attempts: attempts.max(1),
                reason: "exhausted retries".to_string(),
            });
        }
        Fate::Pending { .. } => {}
    }
    records
}

fn fate_strategy() -> impl Strategy<Value = Fate> {
    (0u8..3, 0u32..3).prop_map(|(kind, n)| match kind {
        0 => Fate::Completed { failures: n },
        1 => Fate::Dead { attempts: n + 1 },
        _ => Fate::Pending { failures: n },
    })
}

/// Maps bytes onto a palette heavy in JSON-hostile characters.
fn reason_from_bytes(bytes: &[u8]) -> String {
    const PALETTE: &[char] = &[
        '"', '\\', '\n', '\r', '\t', '{', '}', ':', ',', 'a', 'Z', '0', ' ', 'é', '✓', '\u{1}',
    ];
    bytes
        .iter()
        .map(|&b| PALETTE[usize::from(b) % PALETTE.len()])
        .collect()
}

/// Merges per-job sequences using `choices` to pick which job's next record
/// goes out — an arbitrary worker interleaving that preserves per-job order.
fn interleave(mut sequences: Vec<Vec<JournalRecord>>, choices: &[usize]) -> Vec<JournalRecord> {
    for seq in &mut sequences {
        seq.reverse(); // pop from the back
    }
    let mut merged = Vec::new();
    let mut choices = choices.iter().copied().cycle();
    while sequences.iter().any(|s| !s.is_empty()) {
        let alive: Vec<usize> = (0..sequences.len())
            .filter(|&i| !sequences[i].is_empty())
            .collect();
        let pick = alive[choices.next().unwrap_or(0) % alive.len()];
        merged.push(sequences[pick].pop().expect("alive sequence"));
    }
    merged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_interleaving_replays_to_the_same_frontier(
        fates in proptest::collection::vec((1u8..=9, fate_strategy()), 1..7),
        choices in proptest::collection::vec(0usize..16, 1..64),
    ) {
        // One job per (index, machine): ids are distinct even when machines repeat.
        let sequences: Vec<Vec<JournalRecord>> = fates
            .iter()
            .enumerate()
            .map(|(i, (machine, fate))| {
                records_for(&format!("m{machine}-s{i}-optimized"), *machine, *fate)
            })
            .collect();
        let canonical: Vec<JournalRecord> = sequences.iter().flatten().cloned().collect();
        let shuffled = interleave(sequences, &choices);
        prop_assert_eq!(canonical.len(), shuffled.len());
        let a = JournalState::replay(&canonical);
        let b = JournalState::replay(&shuffled);
        prop_assert_eq!(&a, &b, "frontier must not depend on worker scheduling");
        // The frontier agrees with the fates that produced it.
        for (i, (machine, fate)) in fates.iter().enumerate() {
            let id = format!("m{machine}-s{i}-optimized");
            match fate {
                Fate::Completed { .. } => {
                    prop_assert!(a.completed.contains_key(&id));
                    prop_assert!(!a.dead.contains_key(&id));
                }
                Fate::Dead { .. } => prop_assert!(a.dead.contains_key(&id)),
                Fate::Pending { failures } => {
                    prop_assert!(!a.completed.contains_key(&id));
                    prop_assert!(!a.dead.contains_key(&id));
                    prop_assert_eq!(a.next_attempt(&id), failures + 1);
                }
            }
        }
    }

    #[test]
    fn journal_lines_round_trip_any_reason_string(
        machine in 1u8..=9,
        attempt in 1u32..100,
        reason_bytes in proptest::collection::vec(any::<u8>(), 0..60),
    ) {
        let reason = reason_from_bytes(&reason_bytes);
        let job = format!("m{machine}-s1-fast");
        let records = [
            JournalRecord::Started { job: job.clone(), attempt },
            JournalRecord::Completed { job: job.clone(), attempt, report: report_for(machine) },
            JournalRecord::Failed { job: job.clone(), attempt, reason: reason.clone() },
            JournalRecord::Dead { job, attempts: attempt, reason },
        ];
        for record in &records {
            let line = record.encode_line();
            prop_assert!(!line.contains('\n'));
            prop_assert_eq!(&JournalRecord::decode_line(&line).unwrap(), record);
        }
    }

    #[test]
    fn store_contents_are_insertion_order_independent(
        jobs in proptest::collection::vec((1u8..=9, 0u8..4), 1..12),
        order in proptest::collection::vec(0usize..64, 1..12),
    ) {
        // Each insertion presents its machine's mapping under a basis variant
        // (XOR-combining adjacent functions), so dedup must see through the
        // presentation.
        let variant = |machine: u8, v: u8| -> AddressMapping {
            let mapping = MachineSetting::by_number(machine).unwrap().mapping().clone();
            let mut funcs: Vec<XorFunc> = mapping.bank_funcs().to_vec();
            for i in 0..usize::from(v).min(funcs.len().saturating_sub(1)) {
                funcs[i] = funcs[i].combine(funcs[i + 1]);
            }
            AddressMapping::new(
                funcs,
                mapping.row_bits().to_vec(),
                mapping.column_bits().to_vec(),
            )
            .expect("basis change keeps the mapping valid")
        };
        let inserts: Vec<(AddressMapping, Provenance)> = jobs
            .iter()
            .enumerate()
            .map(|(i, (machine, v))| {
                (
                    variant(*machine, *v),
                    Provenance {
                        machine: format!("No.{machine}"),
                        job: format!("m{machine}-s{i}-fast"),
                    },
                )
            })
            .collect();

        let mut forward = MappingStore::new();
        for (mapping, source) in &inserts {
            forward.insert(mapping, source.clone());
        }
        // A permutation of the insertion order driven by `order`.
        let mut rest: Vec<&(AddressMapping, Provenance)> = inserts.iter().collect();
        let mut permuted = MappingStore::new();
        let mut picks = order.iter().copied().cycle();
        while !rest.is_empty() {
            let pick = picks.next().unwrap_or(0) % rest.len();
            let (mapping, source) = rest.swap_remove(pick);
            permuted.insert(mapping, source.clone());
        }
        prop_assert_eq!(forward.encode(), permuted.encode());
        // Every stored entry's functions span the ground truth's space.
        for entry in forward.entries() {
            let truth = entry
                .sources
                .iter()
                .map(|s| s.machine.trim_start_matches("No.").parse::<u8>().unwrap())
                .map(|n| MachineSetting::by_number(n).unwrap())
                .next()
                .unwrap();
            prop_assert_eq!(
                Gf2Matrix::from_funcs(entry.mapping.bank_funcs()).reduced_row_basis(),
                Gf2Matrix::from_funcs(truth.mapping().bank_funcs()).reduced_row_basis()
            );
        }
        // Decoding the encoded store reproduces it exactly.
        prop_assert_eq!(&MappingStore::decode(&forward.encode()).unwrap(), &forward);
    }
}
