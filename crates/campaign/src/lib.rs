//! # Campaign orchestration for DRAMDig fleets
//!
//! The paper's headline result (Table II) is the same reverse-engineering
//! pipeline re-run across nine machine configurations. This crate scales
//! that workflow: a **campaign** is a spec (machines × seeds × profiles ×
//! ablations) expanded into a job queue and drained by a worker pool, with
//!
//! * a **write-ahead journal** (`journal.jsonl`, hand-rolled JSONL) so an
//!   interrupted campaign resumes from its last completed job,
//! * **retry with a dead-letter list** for jobs whose recovery fails under
//!   measurement noise (each retry re-seeds the noise stream), and
//! * a persistent **mapping store** (`store.txt`) that deduplicates
//!   recovered XOR-function sets across jobs via canonical GF(2) basis
//!   reduction and answers queries like *which machines share bank function
//!   `(13, 16)`?*
//!
//! The store is a pure function of the journal, so a killed-and-resumed
//! campaign produces byte-identical artifacts to an uninterrupted one.
//!
//! ```no_run
//! use campaign::{
//!     run_campaign, run_job_sim_checkpointed, CampaignOptions, CampaignPaths, CampaignSpec,
//!     Profile,
//! };
//!
//! let spec = CampaignSpec::new((1..=9).collect(), 1, Profile::Optimized);
//! let paths = CampaignPaths::new("table2-campaign");
//! let outcome = run_campaign(
//!     &spec,
//!     &paths,
//!     &CampaignOptions::default()
//!         .with_workers(4)
//!         .with_phase_checkpoints(true),
//!     |job, attempt, checkpoint| run_job_sim_checkpointed(job, attempt, checkpoint),
//! )?;
//! println!(
//!     "{} jobs done, {} distinct mappings",
//!     outcome.state.completed.len(),
//!     outcome.store.len()
//! );
//! # Ok::<(), campaign::CampaignError>(())
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod dlq;
pub mod journal;
pub mod mapreduce;
pub mod pool;
pub mod runner;
pub mod spec;
pub mod store;

/// The flat JSONL codec backing the journal. It lives in the dependency-free
/// `telemetry` crate so the trace exporters share it; re-exported here under
/// its historical path.
pub use telemetry::jsonl;

pub use dlq::{dead_letters, render_dlq, requeue, write_dlq, DeadLetter};
pub use journal::{read_journal, Journal, JournalError, JournalRecord, JournalState, RequeueMode};
pub use pool::{
    drain_pool, drain_pool_ctx, Attempt, Lease, MeteredHooks, NoHooks, PoolConfig, PoolHooks,
    PoolOutcome, Verdict,
};
pub use runner::{
    campaign_status, fleet_makespan, run_campaign, run_campaign_with_metrics, run_job_sim,
    run_job_sim_checkpointed, run_job_sim_checkpointed_with, run_job_sim_with, store_from_state,
    CampaignError, CampaignOptions, CampaignOutcome, CampaignPaths, CampaignStatus, JobOutcome,
};
pub use spec::{parse_machine_number, Ablation, CampaignSpec, JobSpec, Profile};
pub use store::{MappingStore, Provenance, StoreEntry};
