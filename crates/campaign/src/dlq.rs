//! The first-class dead-letter queue.
//!
//! Jobs that exhaust their retry budget used to survive only as `dead`
//! records inside the journal. This module promotes them to an inspectable,
//! operable artifact:
//!
//! * [`dead_letters`] lists the DLQ from a replayed [`JournalState`] in
//!   deterministic (job-id) order;
//! * [`render_dlq`] / [`write_dlq`] persist it as `dlq.txt` next to the
//!   journal (atomic write-then-rename, like `store.txt`);
//! * [`requeue`] appends [`JournalRecord::Requeued`] records, which is how
//!   `dramdig campaign dlq retry|reprocess` puts jobs back in play — the
//!   journal stays the single source of truth, so replaying it reproduces
//!   the DLQ state order-independently.
//!
//! `retry` keeps the attempt ledger (the next run continues one past the
//! dead-lettered attempt and therefore draws a fresh attempt-derived seed);
//! `reprocess` wipes it (attempt 1, base seed) for the case where the
//! operator fixed the config or environment and wants a clean slate.

use std::path::Path;

use crate::journal::{Journal, JournalRecord, JournalState, RequeueMode};
use crate::runner::CampaignError;

/// One dead-lettered job, as listed by `dramdig campaign dlq list`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadLetter {
    /// Job id.
    pub job: String,
    /// Total attempts made before dead-lettering.
    pub attempts: u32,
    /// Final failure reason (may span multiple lines).
    pub reason: String,
}

/// The dead-letter queue of a replayed journal, in job-id order.
pub fn dead_letters(state: &JournalState) -> Vec<DeadLetter> {
    state
        .dead
        .iter()
        .map(|(job, reason)| DeadLetter {
            job: job.clone(),
            attempts: state.dead_attempts.get(job).copied().unwrap_or(0),
            reason: reason.clone(),
        })
        .collect()
}

/// Renders the DLQ as a deterministic text artifact: one `job` line per dead
/// letter in job-id order, reasons escaped onto one line. A byte-identical
/// artifact falls out of any journal interleaving that folds to the same
/// state, so `dlq.txt` participates in the campaign's byte-for-byte
/// reproducibility guarantees.
pub fn render_dlq(state: &JournalState) -> String {
    let letters = dead_letters(state);
    let mut out = String::from("# dramdig dead-letter queue\n");
    out.push_str(&format!("# jobs = {}\n", letters.len()));
    for letter in &letters {
        out.push_str(&format!(
            "job {} attempts={} reason={}\n",
            letter.job,
            letter.attempts,
            escape_reason(&letter.reason)
        ));
    }
    out
}

fn escape_reason(reason: &str) -> String {
    reason.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Writes [`render_dlq`] to `path` via write-then-rename, so a kill mid-write
/// never leaves a truncated artifact.
///
/// # Errors
///
/// Returns [`CampaignError::Io`] when the write or rename fails.
pub fn write_dlq(path: &Path, state: &JournalState) -> Result<(), CampaignError> {
    let staged = path.with_extension("txt.tmp");
    std::fs::write(&staged, render_dlq(state))
        .and_then(|()| std::fs::rename(&staged, path))
        .map_err(|error| CampaignError::Io {
            path: path.to_path_buf(),
            error,
        })
}

/// Puts dead-lettered jobs back in play by appending
/// [`JournalRecord::Requeued`] records to the journal at `journal_path`.
/// With `job = Some(id)` only that job is requeued; with `None`, every dead
/// letter is. Returns the requeued job ids in job-id order.
///
/// # Errors
///
/// Returns [`CampaignError::Codec`] when a named job is not dead-lettered,
/// and journal IO errors as [`CampaignError::Journal`].
pub fn requeue(
    journal_path: &Path,
    state: &JournalState,
    mode: RequeueMode,
    job: Option<&str>,
) -> Result<Vec<String>, CampaignError> {
    let targets: Vec<String> = match job {
        Some(id) => {
            if !state.dead.contains_key(id) {
                return Err(CampaignError::Codec(format!(
                    "job `{id}` is not dead-lettered (see `campaign dlq list`)"
                )));
            }
            vec![id.to_string()]
        }
        None => state.dead.keys().cloned().collect(),
    };
    let mut journal = Journal::open_append(journal_path)?;
    for id in &targets {
        journal.append(&JournalRecord::Requeued {
            job: id.clone(),
            mode,
        })?;
    }
    Ok(targets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dead_state() -> JournalState {
        JournalState::replay(&[
            JournalRecord::Dead {
                job: "m6-s1-naive".into(),
                attempts: 3,
                reason: "validation: only 71.0% agree\nnoise?".into(),
            },
            JournalRecord::Dead {
                job: "m4-s1-fast".into(),
                attempts: 1,
                reason: "back\\slash".into(),
            },
        ])
    }

    #[test]
    fn dlq_lists_and_renders_deterministically() {
        let state = dead_state();
        let letters = dead_letters(&state);
        assert_eq!(letters.len(), 2);
        // BTreeMap order: m4 before m6.
        assert_eq!(letters[0].job, "m4-s1-fast");
        assert_eq!(letters[1].attempts, 3);
        let rendered = render_dlq(&state);
        assert_eq!(
            rendered,
            "# dramdig dead-letter queue\n\
             # jobs = 2\n\
             job m4-s1-fast attempts=1 reason=back\\\\slash\n\
             job m6-s1-naive attempts=3 reason=validation: only 71.0% agree\\nnoise?\n"
        );
        // Empty DLQ renders a header-only artifact.
        assert_eq!(
            render_dlq(&JournalState::default()),
            "# dramdig dead-letter queue\n# jobs = 0\n"
        );
    }

    #[test]
    fn requeue_appends_records_and_validates_job_ids() {
        let dir = std::env::temp_dir().join(format!("dramdig-dlq-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let journal_path = dir.join("journal.jsonl");
        let state = dead_state();

        // A named requeue touches only that job.
        let requeued = requeue(
            &journal_path,
            &state,
            RequeueMode::Retry,
            Some("m6-s1-naive"),
        )
        .unwrap();
        assert_eq!(requeued, vec!["m6-s1-naive".to_string()]);

        // Requeue-all covers every dead letter in job-id order.
        let requeued = requeue(&journal_path, &state, RequeueMode::Reprocess, None).unwrap();
        assert_eq!(
            requeued,
            vec!["m4-s1-fast".to_string(), "m6-s1-naive".to_string()]
        );

        // A live job id is rejected with a pointer to `dlq list`.
        let err = requeue(
            &journal_path,
            &state,
            RequeueMode::Retry,
            Some("m9-s1-fast"),
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("not dead-lettered"), "{err}");

        // The appended records replay into the expected frontier when folded
        // onto the original dead records.
        let mut records = vec![
            JournalRecord::Dead {
                job: "m6-s1-naive".into(),
                attempts: 3,
                reason: "validation: only 71.0% agree\nnoise?".into(),
            },
            JournalRecord::Dead {
                job: "m4-s1-fast".into(),
                attempts: 1,
                reason: "back\\slash".into(),
            },
        ];
        records.extend(crate::journal::read_journal(&journal_path).unwrap());
        let replayed = JournalState::replay(&records);
        assert!(replayed.dead.is_empty(), "everything was requeued");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_dlq_is_atomic_and_readable() {
        let dir = std::env::temp_dir().join(format!("dramdig-dlq-write-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dlq.txt");
        write_dlq(&path, &dead_state()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("# dramdig dead-letter queue"));
        assert!(!path.with_extension("txt.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
