//! Map/reduce campaigns over generated machine grids.
//!
//! The Table-II campaign ([`crate::runner`]) drains a fixed nine-machine
//! spec through an in-process thread pool. This module scales the same
//! journal/checkpoint/store machinery to a **coordinator/worker** shape fit
//! for thousand-scenario sweeps of [`MachineGen`]:
//!
//! * a [`GridSpec`] shards a `MachineGen` stream into [`GenJob`] work units
//!   (deterministic machine, class and seeds per index);
//! * the coordinator ([`run_mapreduce`]) dispatches leases over
//!   [`WorkerTransport`]s — real worker *processes* speaking a line-oriented
//!   JSONL protocol over stdin/stdout ([`ProcessTransport`], the `dramdig
//!   campaign worker` subcommand), or an in-process simulated-remote
//!   transport with deterministic kill injection ([`SimTransport`]) for
//!   tests and benches;
//! * a worker death surfaces as [`WorkerLost`]: the lease goes back at the
//!   **same attempt** and a surviving worker steals it, resuming from the
//!   job's last `PhaseCheckpoint` via the atomic checkpoint store — so the
//!   finished report is byte-identical to an unkilled run;
//! * the reduce side merges per-worker journals and per-worker
//!   [`MappingStore`] shards (content-addressed dedup) and renders a
//!   scoreboard that is a pure function of the merged journal state —
//!   **byte-identical regardless of worker topology, kill points or steal
//!   order**.
//!
//! Every artifact lives in one campaign directory: `grid.spec`,
//! `journal.jsonl` (plus transient `journal-worker-NNN.jsonl` files compacted
//! into it after each run), `store.txt`, `dlq.txt` and `SCOREBOARD.txt`.

use std::io::{BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

use dram_model::{GeneratedMachine, MachineClass, MachineGen};
use dram_sim::{PhysMemory, SimConfig, SimMachine};
use dramdig::codec::{self, CodecError};
use dramdig::driver::Phase;
use dramdig::engine::{EngineOptions, NullObserver, PipelineEngine};
use dramdig::{CheckpointStore, DomainKnowledge, DramDigConfig, DramDigError, RecoveryReport};
use mem_probe::SimProbe;

use crate::journal::{read_journal, Journal, JournalRecord, JournalState};
use crate::pool::{self, Attempt, Lease, PoolHooks};
use crate::runner::{CampaignError, CampaignPaths, CampaignStatus};
use crate::spec::Profile;
use crate::store::{MappingStore, Provenance};

/// The description of a generated-machine grid campaign: `scenarios` jobs
/// sampled from [`MachineGen`] under one grid seed and one configuration
/// profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridSpec {
    /// How many scenarios the grid expands to.
    pub scenarios: u32,
    /// The grid seed every per-job seed derives from.
    pub seed: u64,
    /// Configuration profile every job runs with.
    pub profile: Profile,
    /// Failed attempts beyond this count are dead-lettered (0 = one try).
    pub max_retries: u32,
}

impl GridSpec {
    /// A grid of `scenarios` jobs with the default retry budget.
    pub fn new(scenarios: u32, seed: u64, profile: Profile) -> Self {
        GridSpec {
            scenarios,
            seed,
            profile,
            max_retries: 1,
        }
    }

    /// Expands the grid into its deterministic job list, in index order.
    pub fn jobs(&self) -> Vec<GenJob> {
        (0..self.scenarios)
            .map(|index| GenJob {
                index,
                seed: self.seed,
                profile: self.profile,
            })
            .collect()
    }

    /// Serializes the spec as `key = value` lines; [`GridSpec::decode`] is
    /// the inverse.
    pub fn encode(&self) -> String {
        format!(
            concat!(
                "# dramdig grid spec\n",
                "scenarios = {}\n",
                "seed = {}\n",
                "profile = {}\n",
                "max_retries = {}\n",
            ),
            self.scenarios, self.seed, self.profile, self.max_retries,
        )
    }

    /// Parses a spec written by [`GridSpec::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] for malformed lines, unknown keys or values,
    /// or a grid of zero scenarios.
    pub fn decode(text: &str) -> Result<Self, CodecError> {
        let mut scenarios = 0;
        let mut seed = 0;
        let mut profile = Profile::Fast;
        let mut max_retries = 1;
        for (line, key, value) in codec::parse_kv_lines(text)? {
            match key {
                "scenarios" => scenarios = codec::parse_u32(line, key, value)?,
                "seed" => seed = codec::parse_u64(line, key, value)?,
                "profile" => {
                    profile = Profile::from_name(value).ok_or_else(|| {
                        CodecError::at(line, format!("unknown profile `{value}`"))
                    })?;
                }
                "max_retries" => max_retries = codec::parse_u32(line, key, value)?,
                other => return Err(CodecError::at(line, format!("unknown grid key `{other}`"))),
            }
        }
        if scenarios == 0 {
            return Err(CodecError::whole("grid expands to zero scenarios"));
        }
        Ok(GridSpec {
            scenarios,
            seed,
            profile,
            max_retries,
        })
    }
}

/// One work unit of a grid campaign: a pipeline run on a generated machine.
/// The machine, its class and every seed are pure functions of
/// `(index, seed, profile)`, so a worker process regenerates exactly the
/// coordinator's machine from the three protocol fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenJob {
    /// Position in the grid.
    pub index: u32,
    /// The grid seed.
    pub seed: u64,
    /// Configuration profile.
    pub profile: Profile,
}

impl GenJob {
    /// The stable id naming this job in the journal, the store and the DLQ,
    /// e.g. `g0007-s1-fast`.
    pub fn id(&self) -> String {
        format!("g{:04}-s{}-{}", self.index, self.seed, self.profile)
    }

    /// The machine class at this grid index: mostly in-scope, with every
    /// `index % 10 == 3` slot row-remapped and every `index % 100 == 7` slot
    /// a wide-function machine. Wide functions are outside DRAMDig's
    /// assumptions, so the pipeline refuses them loudly on every attempt —
    /// they are the grid's deterministic dead-letter population.
    pub fn class(&self) -> MachineClass {
        if self.index % 100 == 7 {
            MachineClass::WideFunction
        } else if self.index % 10 == 3 {
            MachineClass::RowRemap
        } else {
            MachineClass::InScope
        }
    }

    /// The machine-generator seed of this job.
    pub fn gen_seed(&self) -> u64 {
        mix(self.seed, u64::from(self.index))
    }

    /// The generated machine under test.
    pub fn machine(&self) -> GeneratedMachine {
        MachineGen::new(self.gen_seed()).generate(self.class())
    }

    /// The tool/simulator seed attempt `attempt` (1-based) runs with:
    /// distinct per attempt so a noisy failure is never replayed verbatim,
    /// exactly like [`crate::spec::JobSpec::attempt_seed`].
    #[must_use]
    pub fn attempt_seed(&self, attempt: u32) -> u64 {
        mix(self.seed, 0x7001 ^ (u64::from(self.index) << 8))
            .wrapping_add(u64::from(attempt.saturating_sub(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The grid index encoded in a job id produced by [`GenJob::id`].
    pub fn index_from_id(id: &str) -> Option<u32> {
        id.strip_prefix('g')?.split('-').next()?.parse::<u32>().ok()
    }
}

fn mix(seed: u64, lane: u64) -> u64 {
    let mut z = seed ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The configuration grid jobs run with: the job profile's constructor with
/// grid-sized calibration/validation budgets (a thousand-scenario sweep at
/// full budgets would dominate CI for no extra signal).
pub fn grid_config(profile: Profile) -> DramDigConfig {
    DramDigConfig {
        calibration_samples: 200,
        validation_samples: 32,
        ..profile.config()
    }
}

/// Runs one grid job with phase-granular resume semantics, mirroring
/// [`crate::runner::run_job_sim_checkpointed_with`]: a surviving checkpoint
/// means an earlier attempt was killed mid-pipeline, so the run continues
/// *that* attempt under its stored configuration (byte-identical report),
/// and a genuine failure wipes the directory so the retry re-measures under
/// a fresh attempt-derived seed.
///
/// # Errors
///
/// Returns the human-readable failure reason (the journal's payload).
pub fn run_gen_job(
    job: &GenJob,
    attempt: u32,
    checkpoint: Option<&Path>,
) -> Result<RecoveryReport, String> {
    run_gen_job_engine(job, attempt, checkpoint, None)
}

fn run_gen_job_engine(
    job: &GenJob,
    attempt: u32,
    checkpoint: Option<&Path>,
    stop_after: Option<Phase>,
) -> Result<RecoveryReport, String> {
    let machine = job.machine();
    let knowledge = DomainKnowledge::for_generated(&machine);
    let mut config = grid_config(job.profile).with_seed(job.attempt_seed(attempt));
    let mut options = EngineOptions::default();
    if let Some(dir) = checkpoint {
        if let Ok(Some(stored)) = CheckpointStore::new(dir).load_config() {
            config = stored;
        }
        options = options.with_checkpoint(dir);
    }
    if let Some(phase) = stop_after {
        options = options.with_stop_after(phase);
    }
    let sim = SimMachine::from_generated(&machine, SimConfig::default().with_seed(config.rng_seed));
    let mut probe = SimProbe::new(sim, PhysMemory::full(machine.system.capacity_bytes));
    let result =
        PipelineEngine::new(knowledge, config).run(&mut probe, &options, &mut NullObserver);
    match result {
        Ok(run) => Ok(RecoveryReport::from(&run)),
        Err(e) => {
            if let Some(dir) = checkpoint {
                if !matches!(e, DramDigError::Interrupted { .. }) {
                    let _ = std::fs::remove_dir_all(dir);
                }
            }
            Err(e.to_string())
        }
    }
}

/// Runs the first phases of a grid job and stops at the partition boundary,
/// leaving its phase checkpoints on disk — the "killed mid-phase" state a
/// stealing worker resumes from. Used by both kill injectors.
fn checkpoint_then_abandon(job: &GenJob, attempt: u32, checkpoint: &Path) {
    let _ = run_gen_job_engine(job, attempt, Some(checkpoint), Some(Phase::Partition));
}

// ---------------------------------------------------------------------------
// The line-oriented worker protocol.
// ---------------------------------------------------------------------------

/// One dispatched work unit, as carried by the worker protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkRequest {
    /// The job to run.
    pub job: GenJob,
    /// The attempt this lease runs at.
    pub attempt: u32,
    /// Phase-checkpoint directory (always set by the coordinator).
    pub checkpoint: Option<PathBuf>,
}

use crate::jsonl::{self, JsonValue};

impl WorkRequest {
    /// Encodes the request as one JSONL line (no trailing newline).
    pub fn encode_line(&self) -> String {
        let mut fields = vec![
            ("op", JsonValue::Str("run".into())),
            ("index", JsonValue::Num(u64::from(self.job.index))),
            ("seed", JsonValue::Num(self.job.seed)),
            ("profile", JsonValue::Str(self.job.profile.as_str().into())),
            ("attempt", JsonValue::Num(u64::from(self.attempt))),
        ];
        if let Some(dir) = &self.checkpoint {
            fields.push(("checkpoint", JsonValue::Str(dir.display().to_string())));
        }
        jsonl::encode_object(&fields)
    }
}

/// One line read by a worker: a job to run, or the shutdown sentinel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerInput {
    /// Run a job and write one response line.
    Run(WorkRequest),
    /// Exit cleanly.
    Shutdown,
}

impl WorkerInput {
    /// Parses a line written by [`WorkRequest::encode_line`] or the shutdown
    /// sentinel `{"op":"shutdown"}`.
    ///
    /// # Errors
    ///
    /// Returns a reason string for malformed lines.
    pub fn decode_line(line: &str) -> Result<Self, String> {
        let fields = jsonl::parse_object(line).map_err(|e| format!("bad request JSON: {e}"))?;
        let str_field = |key: &str| {
            jsonl::field(&fields, key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{key}`"))
        };
        let num_field = |key: &str| {
            jsonl::field(&fields, key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing integer field `{key}`"))
        };
        match str_field("op")?.as_str() {
            "shutdown" => Ok(WorkerInput::Shutdown),
            "run" => {
                let profile_name = str_field("profile")?;
                let profile = Profile::from_name(&profile_name)
                    .ok_or_else(|| format!("unknown profile `{profile_name}`"))?;
                let index = u32::try_from(num_field("index")?)
                    .map_err(|_| "index out of range".to_string())?;
                let attempt = u32::try_from(num_field("attempt")?)
                    .map_err(|_| "attempt out of range".to_string())?;
                Ok(WorkerInput::Run(WorkRequest {
                    job: GenJob {
                        index,
                        seed: num_field("seed")?,
                        profile,
                    },
                    attempt,
                    checkpoint: str_field("checkpoint").ok().map(PathBuf::from),
                }))
            }
            other => Err(format!("unknown op `{other}`")),
        }
    }
}

/// Encodes a worker's response to one [`WorkRequest`].
pub fn encode_response(job_id: &str, result: &Result<RecoveryReport, String>) -> String {
    match result {
        Ok(report) => jsonl::encode_object(&[
            ("job", JsonValue::Str(job_id.into())),
            ("report", JsonValue::Str(report.encode())),
        ]),
        Err(reason) => jsonl::encode_object(&[
            ("job", JsonValue::Str(job_id.into())),
            ("error", JsonValue::Str(reason.clone())),
        ]),
    }
}

/// Parses a line written by [`encode_response`].
///
/// # Errors
///
/// Returns a reason string for malformed lines (the coordinator treats that
/// as a lost worker).
pub fn decode_response(line: &str) -> Result<Result<RecoveryReport, String>, String> {
    let fields = jsonl::parse_object(line).map_err(|e| format!("bad response JSON: {e}"))?;
    if let Some(reason) = jsonl::field(&fields, "error").and_then(JsonValue::as_str) {
        return Ok(Err(reason.to_string()));
    }
    let encoded = jsonl::field(&fields, "report")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "response carries neither `report` nor `error`".to_string())?;
    let report = RecoveryReport::decode(encoded).map_err(|e| format!("bad report: {e}"))?;
    Ok(Ok(report))
}

/// The blocking request loop of one worker process: reads one JSONL request
/// per line from `input`, runs it, writes one JSONL response to `output`.
/// Returns cleanly on the shutdown sentinel or EOF (the coordinator went
/// away).
///
/// With `inject_kill = Some(n)`, the `n`-th run request (1-based) checkpoints
/// the job's early phases and then the process SIGKILLs itself — the CI
/// smoke test's deterministic mid-phase kill.
///
/// # Errors
///
/// Returns a reason string on malformed requests or broken pipes.
pub fn run_worker(
    input: impl BufRead,
    mut output: impl std::io::Write,
    inject_kill: Option<u32>,
) -> Result<(), String> {
    let mut served = 0u32;
    for line in input.lines() {
        let line = line.map_err(|e| format!("worker stdin: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let request = match WorkerInput::decode_line(&line)? {
            WorkerInput::Shutdown => return Ok(()),
            WorkerInput::Run(request) => request,
        };
        served += 1;
        if inject_kill == Some(served) {
            if let Some(dir) = request.checkpoint.as_deref() {
                checkpoint_then_abandon(&request.job, request.attempt, dir);
            }
            kill_self_hard();
        }
        let result = run_gen_job(&request.job, request.attempt, request.checkpoint.as_deref());
        let response = encode_response(&request.job.id(), &result);
        writeln!(output, "{response}").map_err(|e| format!("worker stdout: {e}"))?;
        output.flush().map_err(|e| format!("worker stdout: {e}"))?;
    }
    Ok(())
}

/// SIGKILLs the current process — no unwinding, no flushes, exactly the
/// failure mode the steal path must survive. Falls back to `abort` on
/// platforms without a `kill` binary.
fn kill_self_hard() -> ! {
    let _ = Command::new("kill")
        .args(["-9", &std::process::id().to_string()])
        .status();
    std::process::abort();
}

// ---------------------------------------------------------------------------
// Transports.
// ---------------------------------------------------------------------------

/// A worker died underneath its job (killed process, closed pipe, garbled
/// protocol). The coordinator re-queues the lease at the same attempt and
/// retires the transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerLost(pub String);

/// One remote worker the coordinator can dispatch jobs to. The outer
/// `Result` is transport health (`Err` = the worker is gone); the inner one
/// is the job outcome as reported by a live worker.
pub trait WorkerTransport: Send {
    /// Dispatches one request and waits for its response.
    ///
    /// # Errors
    ///
    /// Returns [`WorkerLost`] when the worker died mid-request.
    fn run(&mut self, request: &WorkRequest) -> Result<Result<RecoveryReport, String>, WorkerLost>;
}

/// A real worker process (`dramdig campaign worker`) driven over
/// stdin/stdout. Dropping the transport sends the shutdown sentinel and
/// reaps the child.
#[derive(Debug)]
pub struct ProcessTransport {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl ProcessTransport {
    /// Spawns `worker_bin campaign worker <extra_args>` with piped standard
    /// streams. The binary is usually [`std::env::current_exe`] — the CLI
    /// re-enters itself — but tests may point at an explicit build.
    ///
    /// # Errors
    ///
    /// Returns the spawn error.
    pub fn spawn(worker_bin: &Path, extra_args: &[String]) -> std::io::Result<Self> {
        let mut child = Command::new(worker_bin)
            .arg("campaign")
            .arg("worker")
            .args(extra_args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        Ok(ProcessTransport {
            child,
            stdin,
            stdout,
        })
    }
}

impl WorkerTransport for ProcessTransport {
    fn run(&mut self, request: &WorkRequest) -> Result<Result<RecoveryReport, String>, WorkerLost> {
        let lost = |reason: String| WorkerLost(format!("worker process lost: {reason}"));
        writeln!(self.stdin, "{}", request.encode_line()).map_err(|e| lost(e.to_string()))?;
        self.stdin.flush().map_err(|e| lost(e.to_string()))?;
        let mut line = String::new();
        let read = self
            .stdout
            .read_line(&mut line)
            .map_err(|e| lost(e.to_string()))?;
        if read == 0 {
            return Err(lost("stdout closed (killed?)".into()));
        }
        decode_response(line.trim_end()).map_err(lost)
    }
}

impl Drop for ProcessTransport {
    fn drop(&mut self) {
        let _ = writeln!(self.stdin, "{{\"op\":\"shutdown\"}}");
        let _ = self.stdin.flush();
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// An in-process simulated-remote worker: runs jobs through the same
/// [`run_gen_job`] path a real worker process uses, with a deterministic
/// kill switch — on the `kill_at`-th request (1-based) it checkpoints the
/// job mid-phase and then reports itself lost, and stays lost thereafter.
#[derive(Debug, Clone, Default)]
pub struct SimTransport {
    kill_at: Option<u32>,
    served: u32,
    dead: bool,
}

impl SimTransport {
    /// A healthy simulated worker.
    pub fn new() -> Self {
        SimTransport::default()
    }

    /// A simulated worker that dies on its `kill_at`-th request (1-based),
    /// leaving that job's phase checkpoints behind for the stealing worker.
    pub fn killed_at(kill_at: u32) -> Self {
        SimTransport {
            kill_at: Some(kill_at),
            served: 0,
            dead: false,
        }
    }
}

impl WorkerTransport for SimTransport {
    fn run(&mut self, request: &WorkRequest) -> Result<Result<RecoveryReport, String>, WorkerLost> {
        if self.dead {
            return Err(WorkerLost("simulated worker already dead".into()));
        }
        self.served += 1;
        if self.kill_at == Some(self.served) {
            self.dead = true;
            if let Some(dir) = request.checkpoint.as_deref() {
                checkpoint_then_abandon(&request.job, request.attempt, dir);
            }
            return Err(WorkerLost(format!(
                "kill -9 injected on request {}",
                self.served
            )));
        }
        Ok(run_gen_job(
            &request.job,
            request.attempt,
            request.checkpoint.as_deref(),
        ))
    }
}

// ---------------------------------------------------------------------------
// The coordinator (map) and the merge (reduce).
// ---------------------------------------------------------------------------

/// Per-worker context owned by one coordinator pool thread: the transport
/// and the worker's own write-ahead journal shard.
struct WorkerCtx {
    transport: Box<dyn WorkerTransport>,
    journal: Journal,
}

/// Metrics-only pool hooks for the mapreduce drain (the journaling happens
/// per worker, in the run closure, so each shard is written without holding
/// the pool lock).
struct MapHooks;

impl PoolHooks<GenJob, RecoveryReport> for MapHooks {
    type Error = CampaignError;
}

/// What one [`run_mapreduce`] invocation did, plus the grid-wide state after
/// its reduce step.
#[derive(Debug)]
pub struct MapReduceOutcome {
    /// Jobs completed by *this* invocation.
    pub completed_now: usize,
    /// The merged journal state (covers prior invocations too).
    pub state: JournalState,
    /// The merged mapping store persisted to `store.txt`.
    pub store: MappingStore,
    /// The rendered scoreboard persisted to `SCOREBOARD.txt`.
    pub scoreboard: String,
}

/// Runs (or resumes) a grid campaign across `transports`: shards the pending
/// jobs of `spec` into leases, dispatches them over the worker transports
/// with checkpoint-granular stealing, then reduces — merges the per-worker
/// journal and store shards, compacts the worker journals into
/// `journal.jsonl`, and rewrites `store.txt`, `dlq.txt` and `SCOREBOARD.txt`
/// as pure functions of the merged state.
///
/// Phase checkpoints are always on: every lease carries a checkpoint
/// directory, which is what makes a steal resume mid-pipeline.
///
/// # Errors
///
/// Returns [`CampaignError`] on journal/store IO failures, or when the
/// merged store shards diverge from the journal replay (a reduce-side bug —
/// never expected). Job failures and lost workers are *not* errors.
pub fn run_mapreduce(
    spec: &GridSpec,
    paths: &CampaignPaths,
    transports: Vec<Box<dyn WorkerTransport>>,
    metrics: Option<&mut telemetry::Registry>,
) -> Result<MapReduceOutcome, CampaignError> {
    let io_err = |path: PathBuf| move |error| CampaignError::Io { path, error };
    std::fs::create_dir_all(paths.checkpoints()).map_err(io_err(paths.checkpoints()))?;

    let prior = JournalState::replay(&read_merged_journal(paths)?);
    let queue: Vec<Lease<GenJob>> = spec
        .jobs()
        .into_iter()
        .filter(|job| {
            let id = job.id();
            !prior.completed.contains_key(&id) && !prior.dead.contains_key(&id)
        })
        .map(|job| {
            let attempt = prior.next_attempt(&job.id());
            Lease::new(job, attempt)
        })
        .collect();

    let contexts: Vec<WorkerCtx> = transports
        .into_iter()
        .enumerate()
        .map(|(i, transport)| {
            Ok(WorkerCtx {
                transport,
                journal: Journal::open_append(&worker_journal_path(paths, i))?,
            })
        })
        .collect::<Result<_, CampaignError>>()?;

    let pool_config = pool::PoolConfig {
        workers: contexts.len(),
        max_retries: spec.max_retries,
        max_completions: None,
    };
    let max_retries = spec.max_retries;
    let run = |ctx: &mut WorkerCtx,
               job: &GenJob,
               attempt: u32|
     -> Result<Attempt<RecoveryReport>, CampaignError> {
        let id = job.id();
        let checkpoint = paths.checkpoints().join(&id);
        // Write-ahead into this worker's shard: the lease and its
        // checkpoint path are durable before the transport sees the job.
        ctx.journal.append(&JournalRecord::Started {
            job: id.clone(),
            attempt,
        })?;
        ctx.journal.append(&JournalRecord::Checkpoint {
            job: id.clone(),
            path: checkpoint.display().to_string(),
        })?;
        let request = WorkRequest {
            job: job.clone(),
            attempt,
            checkpoint: Some(checkpoint.clone()),
        };
        match ctx.transport.run(&request) {
            Err(WorkerLost(reason)) => {
                // No outcome record: the merged journal shows a started
                // attempt without a settle, and the checkpoint survives for
                // whichever worker steals the lease.
                Ok(Attempt::Interrupted(reason))
            }
            Ok(Ok(report)) => {
                ctx.journal.append(&JournalRecord::Completed {
                    job: id,
                    attempt,
                    report: report.clone(),
                })?;
                let _ = std::fs::remove_dir_all(&checkpoint);
                Ok(Attempt::Completed(report))
            }
            Ok(Err(reason)) => {
                if attempt > max_retries {
                    ctx.journal.append(&JournalRecord::Dead {
                        job: id,
                        attempts: attempt,
                        reason: reason.clone(),
                    })?;
                    let _ = std::fs::remove_dir_all(&checkpoint);
                } else {
                    ctx.journal.append(&JournalRecord::Failed {
                        job: id,
                        attempt,
                        reason: reason.clone(),
                    })?;
                }
                Ok(Attempt::Failed(reason))
            }
        }
    };

    let drained = match metrics {
        Some(registry) => {
            let depth = queue.len();
            let mut metered = pool::MeteredHooks::new(MapHooks, registry, depth);
            pool::drain_pool_ctx(queue, &pool_config, &mut metered, contexts, run)?
        }
        None => pool::drain_pool_ctx(queue, &pool_config, &mut MapHooks, contexts, run)?,
    };
    let completed_now = drained.completed.len();

    let (state, store, scoreboard) = reduce(spec, paths)?;
    Ok(MapReduceOutcome {
        completed_now,
        state,
        store,
        scoreboard,
    })
}

/// The reduce step: merge worker store shards, verify them against a replay
/// of the merged journal, compact the worker journals into `journal.jsonl`,
/// and rewrite the derived artifacts.
fn reduce(
    spec: &GridSpec,
    paths: &CampaignPaths,
) -> Result<(JournalState, MappingStore, String), CampaignError> {
    // Per-worker store shards: each worker's completions, content-addressed.
    let mut merged_store =
        grid_store_from_state(&JournalState::replay(&read_journal(&paths.journal())?));
    for path in worker_journal_paths(paths)? {
        let records = read_journal(&path)?;
        let shard = grid_store_from_state(&JournalState::replay(&records));
        let shard_path = worker_store_path(paths, &path);
        std::fs::write(&shard_path, shard.encode()).map_err(|error| CampaignError::Io {
            path: shard_path,
            error,
        })?;
        merged_store.merge(shard);
    }

    // The merged shards must agree byte-for-byte with a store rebuilt from
    // the merged journal — the reduce-side differential check.
    let merged_state = JournalState::replay(&read_merged_journal(paths)?);
    let rebuilt = grid_store_from_state(&merged_state);
    if merged_store.encode() != rebuilt.encode() {
        return Err(CampaignError::Codec(
            "mapreduce reduce: merged store shards diverge from journal replay".into(),
        ));
    }

    compact_journals(paths)?;

    let staged = paths.store().with_extension("txt.tmp");
    std::fs::write(&staged, merged_store.encode())
        .and_then(|()| std::fs::rename(&staged, paths.store()))
        .map_err(|error| CampaignError::Io {
            path: paths.store(),
            error,
        })?;
    crate::dlq::write_dlq(&paths.dlq(), &merged_state)?;
    let scoreboard = render_grid_scoreboard(spec, &merged_state, &merged_store);
    let board_path = paths.dir().join("SCOREBOARD.txt");
    let staged = board_path.with_extension("txt.tmp");
    std::fs::write(&staged, &scoreboard)
        .and_then(|()| std::fs::rename(&staged, &board_path))
        .map_err(|error| CampaignError::Io {
            path: board_path,
            error,
        })?;
    Ok((merged_state, merged_store, scoreboard))
}

fn worker_journal_path(paths: &CampaignPaths, index: usize) -> PathBuf {
    paths.dir().join(format!("journal-worker-{index:03}.jsonl"))
}

fn worker_store_path(paths: &CampaignPaths, journal: &Path) -> PathBuf {
    let name = journal
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("journal-worker");
    paths
        .dir()
        .join(format!("store-{}.txt", name.trim_start_matches("journal-")))
}

/// Every worker journal shard currently on disk, in file-name order.
fn worker_journal_paths(paths: &CampaignPaths) -> Result<Vec<PathBuf>, CampaignError> {
    let dir = paths.dir();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(error) => {
            return Err(CampaignError::Io {
                path: dir.to_path_buf(),
                error,
            })
        }
    };
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|error| CampaignError::Io {
            path: dir.to_path_buf(),
            error,
        })?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("journal-worker-") && name.ends_with(".jsonl") {
            found.push(entry.path());
        }
    }
    found.sort();
    Ok(found)
}

/// The full journal of a grid campaign: the compacted top-level journal
/// followed by any per-worker shards not yet compacted (e.g. after a killed
/// coordinator). Top-level records are chronologically oldest, so DLQ
/// requeue records always fold after the dead letters they revive.
pub fn read_merged_journal(paths: &CampaignPaths) -> Result<Vec<JournalRecord>, CampaignError> {
    let mut records = read_journal(&paths.journal())?;
    for path in worker_journal_paths(paths)? {
        records.extend(read_journal(&path)?);
    }
    Ok(records)
}

/// Folds every worker journal shard into the top-level `journal.jsonl` and
/// removes the shard files. Idempotent under a kill at any point: a shard
/// deleted only after its records are flushed, and replay tolerates the
/// duplicates a mid-compaction kill can leave.
pub fn compact_journals(paths: &CampaignPaths) -> Result<(), CampaignError> {
    let shards = worker_journal_paths(paths)?;
    if shards.is_empty() {
        return Ok(());
    }
    let mut journal = Journal::open_append(&paths.journal())?;
    for shard in shards {
        for record in read_journal(&shard)? {
            journal.append(&record)?;
        }
        std::fs::remove_file(&shard).map_err(|error| CampaignError::Io {
            path: shard.clone(),
            error,
        })?;
    }
    Ok(())
}

/// Rebuilds the mapping store from a merged grid journal state: every
/// completed job's mapping, content-addressed, with the generated machine's
/// class as its provenance label.
pub fn grid_store_from_state(state: &JournalState) -> MappingStore {
    let mut store = MappingStore::new();
    for (job_id, report) in &state.completed {
        let machine = GenJob::index_from_id(job_id)
            .map(|index| {
                let probe = GenJob {
                    index,
                    seed: 0,
                    profile: Profile::Fast,
                };
                format!("gen-{}", probe.class().as_str())
            })
            .unwrap_or_else(|| job_id.clone());
        store.insert(
            &report.mapping,
            Provenance {
                machine,
                job: job_id.clone(),
            },
        );
    }
    store
}

/// FNV-1a over a rendered artifact (the scoreboard fingerprint recorded in
/// `SCOREBOARD_HISTORY.txt`).
pub fn fingerprint(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn escape_line(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Renders the grid scoreboard: a pure function of the spec and the merged
/// journal state. Worker topology, kill points and steal order never appear,
/// which is what makes the artifact byte-identical across them — per-job
/// report fingerprints pin the actual recovered bytes, not just counts.
pub fn render_grid_scoreboard(
    spec: &GridSpec,
    state: &JournalState,
    store: &MappingStore,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# dramdig mapreduce scoreboard v1");
    let _ = writeln!(out, "scenarios = {}", spec.scenarios);
    let _ = writeln!(out, "seed = {}", spec.seed);
    let _ = writeln!(out, "profile = {}", spec.profile);
    let mut completed = 0usize;
    let mut dead = 0usize;
    let mut pending = 0usize;
    let mut body = String::new();
    for job in spec.jobs() {
        let id = job.id();
        if let Some(report) = state.completed.get(&id) {
            completed += 1;
            let _ = writeln!(
                body,
                "{id} [{}] ok report=fnv1a:{:016x}",
                job.class().as_str(),
                fingerprint(&report.encode()),
            );
        } else if let Some(reason) = state.dead.get(&id) {
            dead += 1;
            let _ = writeln!(
                body,
                "{id} [{}] dead attempts={} reason={}",
                job.class().as_str(),
                state.dead_attempts.get(&id).copied().unwrap_or(0),
                escape_line(reason),
            );
        } else {
            pending += 1;
            let _ = writeln!(
                body,
                "{id} [{}] pending attempt={}",
                job.class().as_str(),
                state.next_attempt(&id),
            );
        }
    }
    let _ = writeln!(out, "completed = {completed}");
    let _ = writeln!(out, "dead = {dead}");
    let _ = writeln!(out, "pending = {pending}");
    let _ = writeln!(out, "distinct_mappings = {}", store.len());
    let _ = writeln!(out, "store = fnv1a:{:016x}", fingerprint(&store.encode()));
    out.push_str(&body);
    out
}

/// Encodes a finished grid run as one stable history line for
/// `SCOREBOARD_HISTORY.txt`. The part before the `|` is the identity key;
/// re-running the same key must reproduce the line byte-for-byte (any drift
/// is a regression the history gate catches).
pub fn grid_history_line(spec: &GridSpec, outcome: &MapReduceOutcome) -> String {
    let pending =
        spec.scenarios as usize - outcome.state.completed.len() - outcome.state.dead.len();
    format!(
        "grid=mapreduce scenarios={} seed={} profile={} | board=fnv1a:{:016x} completed={} dead={} pending={} mappings={}",
        spec.scenarios,
        spec.seed,
        spec.profile,
        fingerprint(&outcome.scoreboard),
        outcome.state.completed.len(),
        outcome.state.dead.len(),
        pending,
        outcome.store.len(),
    )
}

/// Summarizes a grid campaign directory without running anything.
///
/// # Errors
///
/// Returns [`CampaignError`] when the journals cannot be read.
pub fn grid_status(
    spec: &GridSpec,
    paths: &CampaignPaths,
) -> Result<CampaignStatus, CampaignError> {
    let state = JournalState::replay(&read_merged_journal(paths)?);
    let store = grid_store_from_state(&state);
    let mut pending = Vec::new();
    for job in spec.jobs() {
        let id = job.id();
        if !state.completed.contains_key(&id) && !state.dead.contains_key(&id) {
            let attempt = state.next_attempt(&id);
            pending.push((id, attempt));
        }
    }
    Ok(CampaignStatus {
        total_jobs: spec.scenarios as usize,
        completed: state.completed.len(),
        dead: state
            .dead
            .iter()
            .map(|(job, reason)| (job.clone(), reason.clone()))
            .collect(),
        pending,
        distinct_mappings: store.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_paths(tag: &str) -> CampaignPaths {
        let dir =
            std::env::temp_dir().join(format!("dramdig-mapreduce-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CampaignPaths::new(dir)
    }

    fn boxed(transports: Vec<SimTransport>) -> Vec<Box<dyn WorkerTransport>> {
        transports
            .into_iter()
            .map(|t| Box::new(t) as Box<dyn WorkerTransport>)
            .collect()
    }

    #[test]
    fn grid_spec_round_trips_and_rejects_garbage() {
        let spec = GridSpec {
            scenarios: 1000,
            seed: 7,
            profile: Profile::Fast,
            max_retries: 2,
        };
        assert_eq!(GridSpec::decode(&spec.encode()).unwrap(), spec);
        assert!(GridSpec::decode("scenarios = 0\nseed = 1\n").is_err());
        assert!(GridSpec::decode("scenarios = 4\nprofile = warp\n").is_err());
        assert!(GridSpec::decode("wat = 1\n").is_err());
    }

    #[test]
    fn gen_jobs_are_deterministic_with_classes_by_index() {
        let spec = GridSpec::new(200, 1, Profile::Fast);
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 200);
        assert_eq!(jobs[7].class(), MachineClass::WideFunction);
        assert_eq!(jobs[107].class(), MachineClass::WideFunction);
        assert_eq!(jobs[3].class(), MachineClass::RowRemap);
        assert_eq!(jobs[13].class(), MachineClass::RowRemap);
        assert_eq!(jobs[0].class(), MachineClass::InScope);
        assert_eq!(jobs[7].id(), "g0007-s1-fast");
        assert_eq!(GenJob::index_from_id("g0007-s1-fast"), Some(7));
        assert_eq!(GenJob::index_from_id("m4-s1-fast"), None);
        // Same (index, seed) → same machine; different index → different.
        assert_eq!(jobs[5].machine().mapping(), jobs[5].machine().mapping());
        assert_ne!(jobs[5].gen_seed(), jobs[6].gen_seed());
        // Attempt seeds are distinct per attempt.
        assert_ne!(jobs[5].attempt_seed(1), jobs[5].attempt_seed(2));
    }

    #[test]
    fn worker_protocol_round_trips() {
        let request = WorkRequest {
            job: GenJob {
                index: 42,
                seed: 7,
                profile: Profile::Optimized,
            },
            attempt: 3,
            checkpoint: Some(PathBuf::from("/tmp/ck/g0042")),
        };
        let decoded = WorkerInput::decode_line(&request.encode_line()).unwrap();
        assert_eq!(decoded, WorkerInput::Run(request.clone()));
        assert_eq!(
            WorkerInput::decode_line("{\"op\":\"shutdown\"}").unwrap(),
            WorkerInput::Shutdown
        );
        assert!(WorkerInput::decode_line("{\"op\":\"warp\"}").is_err());
        assert!(WorkerInput::decode_line("not json").is_err());

        // Error responses round-trip; garbled ones are rejected.
        let err_line = encode_response("g0042-s7-optimized", &Err("validation: noise".into()));
        assert_eq!(
            decode_response(&err_line).unwrap(),
            Err("validation: noise".to_string())
        );
        assert!(decode_response("{\"job\":\"x\"}").is_err());
    }

    #[test]
    fn mapreduce_grid_is_topology_invariant_under_kills() {
        // One small grid covering all three classes (index 7 = wide-function
        // dead-letter fodder, 3 = row-remap), run under three topologies:
        // single worker, three workers, and three workers with one killed
        // mid-phase. The merged scoreboard and store must be byte-identical.
        let spec = GridSpec {
            scenarios: 8,
            seed: 1,
            profile: Profile::Fast,
            max_retries: 1,
        };

        let run = |tag: &str, transports: Vec<SimTransport>| {
            let paths = temp_paths(tag);
            let outcome = run_mapreduce(&spec, &paths, boxed(transports), None).unwrap();
            let store_bytes = std::fs::read_to_string(paths.store()).unwrap();
            let board_bytes = std::fs::read_to_string(paths.dir().join("SCOREBOARD.txt")).unwrap();
            assert_eq!(board_bytes, outcome.scoreboard);
            // Worker journals were compacted into the top-level journal.
            assert!(worker_journal_paths(&paths).unwrap().is_empty());
            std::fs::remove_dir_all(paths.dir()).unwrap();
            (outcome, store_bytes, board_bytes)
        };

        let (single, single_store, single_board) = run("t1", vec![SimTransport::new()]);
        assert_eq!(single.state.completed.len(), 7);
        assert_eq!(single.state.dead.len(), 1, "index 7 dead-letters");
        assert!(single.state.dead.contains_key("g0007-s1-fast"));

        let (multi, multi_store, multi_board) = run(
            "t3",
            vec![
                SimTransport::new(),
                SimTransport::new(),
                SimTransport::new(),
            ],
        );
        assert_eq!(multi.state.completed.len(), 7);
        assert_eq!(multi_board, single_board, "topology changes the bytes");
        assert_eq!(multi_store, single_store);

        let (killed, killed_store, killed_board) = run(
            "kill",
            vec![
                SimTransport::killed_at(2),
                SimTransport::new(),
                SimTransport::new(),
            ],
        );
        assert_eq!(killed.state.completed.len(), 7);
        assert_eq!(
            killed_board, single_board,
            "a mid-phase kill changes the bytes"
        );
        assert_eq!(killed_store, single_store);
    }

    #[test]
    fn all_transports_dead_leaves_a_resumable_grid() {
        let spec = GridSpec {
            scenarios: 4,
            seed: 1,
            profile: Profile::Fast,
            max_retries: 0,
        };
        let paths = temp_paths("stall");
        // Both workers die immediately: nothing completes, nothing is lost.
        let outcome = run_mapreduce(
            &spec,
            &paths,
            boxed(vec![SimTransport::killed_at(1), SimTransport::killed_at(1)]),
            None,
        )
        .unwrap();
        assert_eq!(outcome.completed_now, 0);
        assert!(outcome.state.dead.is_empty());
        let status = grid_status(&spec, &paths).unwrap();
        assert_eq!(status.pending.len(), 4);
        // Interrupted leases resume at attempt 2 (the crashed attempt burns
        // across coordinator restarts) — but their checkpoints survive, so
        // the resumed run still continues the killed attempt byte-for-byte.
        let resumed = run_mapreduce(&spec, &paths, boxed(vec![SimTransport::new()]), None).unwrap();
        assert_eq!(resumed.state.completed.len(), 4);
        assert!(grid_status(&spec, &paths).unwrap().pending.is_empty());
        std::fs::remove_dir_all(paths.dir()).unwrap();
    }

    #[test]
    fn dlq_requeue_puts_grid_jobs_back_in_play() {
        let spec = GridSpec {
            scenarios: 8,
            seed: 1,
            profile: Profile::Fast,
            max_retries: 0,
        };
        let paths = temp_paths("dlq");
        let outcome = run_mapreduce(&spec, &paths, boxed(vec![SimTransport::new()]), None).unwrap();
        assert_eq!(outcome.state.dead.len(), 1);
        // Retry: the fodder job re-enters the queue at a later attempt...
        let requeued = crate::dlq::requeue(
            &paths.journal(),
            &outcome.state,
            crate::journal::RequeueMode::Retry,
            None,
        )
        .unwrap();
        assert_eq!(requeued, vec!["g0007-s1-fast".to_string()]);
        let state = JournalState::replay(&read_merged_journal(&paths).unwrap());
        assert!(state.dead.is_empty());
        assert_eq!(state.next_attempt("g0007-s1-fast"), 2);
        // ...and dead-letters again on the next run (wide functions always
        // refuse), landing back in the DLQ with a higher attempt count.
        let again = run_mapreduce(&spec, &paths, boxed(vec![SimTransport::new()]), None).unwrap();
        assert_eq!(again.state.dead.len(), 1);
        assert_eq!(again.state.dead_attempts["g0007-s1-fast"], 2);
        std::fs::remove_dir_all(paths.dir()).unwrap();
    }

    #[test]
    fn in_process_worker_loop_speaks_the_protocol() {
        let spec = GridSpec::new(2, 1, Profile::Fast);
        let job = spec.jobs().remove(0);
        let request = WorkRequest {
            job: job.clone(),
            attempt: 1,
            checkpoint: None,
        };
        let input = format!("{}\n{{\"op\":\"shutdown\"}}\n", request.encode_line());
        let mut output = Vec::new();
        run_worker(input.as_bytes(), &mut output, None).unwrap();
        let text = String::from_utf8(output).unwrap();
        let response = decode_response(text.trim()).unwrap();
        let report = response.expect("in-scope job completes");
        // The worker's report matches a direct in-process run byte-for-byte.
        let direct = run_gen_job(&job, 1, None).unwrap();
        assert_eq!(report.encode(), direct.encode());
        // Garbage requests error instead of wedging the loop.
        let mut sink = Vec::new();
        assert!(run_worker(b"garbage\n".as_slice(), &mut sink, None).is_err());
    }
}
