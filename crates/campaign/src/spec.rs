//! Campaign specifications: which jobs a fleet runs.
//!
//! A [`CampaignSpec`] is the cartesian product of Table-II machine numbers,
//! simulator seeds, configuration [`Profile`]s and knowledge [`Ablation`]s.
//! [`CampaignSpec::jobs`] expands it into a deterministic job list; each
//! [`JobSpec`] has a stable id that names it in the journal, the store and
//! the dead-letter list. The spec itself round-trips through a plain-text
//! encoding so `campaign resume` re-derives exactly the same job list the
//! interrupted `campaign run` started from.

use std::fmt;

use dramdig::codec::{self, CodecError};
use dramdig::DramDigConfig;

/// A named configuration profile (see [`DramDigConfig`]'s constructors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Profile {
    /// Seed-faithful baseline with every acceleration disabled.
    Naive,
    /// Paper defaults ([`DramDigConfig::default`]).
    Default,
    /// Reduced calibration/validation budgets ([`DramDigConfig::fast`]).
    Fast,
    /// All accelerators on ([`DramDigConfig::optimized`]).
    #[default]
    Optimized,
}

impl Profile {
    /// Every profile, in a stable order.
    pub const ALL: [Profile; 4] = [
        Profile::Naive,
        Profile::Default,
        Profile::Fast,
        Profile::Optimized,
    ];

    /// Stable identifier used in job ids, spec files and on the CLI.
    pub const fn as_str(self) -> &'static str {
        match self {
            Profile::Naive => "naive",
            Profile::Default => "default",
            Profile::Fast => "fast",
            Profile::Optimized => "optimized",
        }
    }

    /// Parses an identifier produced by [`Profile::as_str`].
    pub fn from_name(name: &str) -> Option<Profile> {
        Profile::ALL.into_iter().find(|p| p.as_str() == name)
    }

    /// Parses a comma-separated profile list (the spec-file and CLI
    /// `--profiles` syntax), returning the unknown item on failure.
    pub fn parse_list(text: &str) -> Result<Vec<Profile>, String> {
        split_list(text)
            .map(|item| {
                Profile::from_name(item).ok_or_else(|| {
                    format!("unknown profile `{item}` (expected naive, default, fast or optimized)")
                })
            })
            .collect()
    }

    /// The pipeline configuration this profile stands for (without a seed;
    /// the runner derives the seed from the job).
    pub fn config(self) -> DramDigConfig {
        match self {
            Profile::Naive => DramDigConfig::naive(),
            Profile::Default => DramDigConfig::default(),
            Profile::Fast => DramDigConfig::fast(),
            Profile::Optimized => DramDigConfig::optimized(),
        }
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Which knowledge group a job disables before running the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Ablation {
    /// Drop the DDR specification (row/column bit counts).
    Specifications,
    /// Drop the system information (total bank count).
    SystemInfo,
    /// Drop the empirical observations.
    Empirical,
}

impl Ablation {
    /// Every ablation, in a stable order.
    pub const ALL: [Ablation; 3] = [
        Ablation::Specifications,
        Ablation::SystemInfo,
        Ablation::Empirical,
    ];

    /// Stable identifier used in job ids, spec files and on the CLI.
    pub const fn as_str(self) -> &'static str {
        match self {
            Ablation::Specifications => "spec",
            Ablation::SystemInfo => "sysinfo",
            Ablation::Empirical => "empirical",
        }
    }

    /// Parses an identifier produced by [`Ablation::as_str`].
    pub fn from_name(name: &str) -> Option<Ablation> {
        Ablation::ALL.into_iter().find(|a| a.as_str() == name)
    }

    /// Parses a comma-separated ablation list where `none` stands for "full
    /// knowledge" (the spec-file and CLI `--ablations` syntax), returning
    /// the unknown item on failure.
    pub fn parse_list(text: &str) -> Result<Vec<Option<Ablation>>, String> {
        split_list(text)
            .map(|item| {
                if item == "none" {
                    Ok(None)
                } else {
                    Ablation::from_name(item).map(Some).ok_or_else(|| {
                        format!(
                            "unknown ablation `{item}` (expected none, spec, sysinfo or empirical)"
                        )
                    })
                }
            })
            .collect()
    }
}

impl fmt::Display for Ablation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One job of a campaign: a single pipeline run on one machine setting.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct JobSpec {
    /// Table-II machine number (1–9).
    pub machine: u8,
    /// Base seed for the simulator and the tool RNG; retries derive fresh
    /// seeds from it so a noisy failure is not replayed verbatim.
    pub seed: u64,
    /// Configuration profile the job runs with.
    pub profile: Profile,
    /// Optional knowledge group disabled for this job.
    pub ablation: Option<Ablation>,
}

impl JobSpec {
    /// The stable id naming this job in the journal and the store, e.g.
    /// `m4-s1-optimized` or `m6-s2-default-sysinfo`.
    pub fn id(&self) -> String {
        let mut id = format!("m{}-s{}-{}", self.machine, self.seed, self.profile);
        if let Some(ablation) = self.ablation {
            id.push('-');
            id.push_str(ablation.as_str());
        }
        id
    }

    /// The Table-II label of the machine under test, e.g. `No.4`.
    pub fn machine_label(&self) -> String {
        format!("No.{}", self.machine)
    }

    /// The seed attempt number `attempt` (1-based) runs with: the job's base
    /// seed for attempt 1, then distinct derived seeds so a noisy failure is
    /// never replayed verbatim. The odd multiplier keeps distinct
    /// `(seed, attempt)` pairs distinct.
    #[must_use]
    pub fn attempt_seed(&self, attempt: u32) -> u64 {
        self.seed
            .wrapping_add(u64::from(attempt.saturating_sub(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

impl fmt::Display for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id())
    }
}

/// The full description of a campaign: job dimensions plus retry policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Table-II machine numbers to sweep.
    pub machines: Vec<u8>,
    /// Base seeds to sweep.
    pub seeds: Vec<u64>,
    /// Configuration profiles to sweep.
    pub profiles: Vec<Profile>,
    /// Knowledge ablations to sweep (`None` = full knowledge).
    pub ablations: Vec<Option<Ablation>>,
    /// How many times a failed job is retried before it is dead-lettered
    /// (0 = a single attempt).
    pub max_retries: u32,
}

impl CampaignSpec {
    /// A spec sweeping `machines` with one seed, one profile and full
    /// knowledge — the common Table-II reproduction campaign.
    pub fn new(machines: Vec<u8>, seed: u64, profile: Profile) -> Self {
        CampaignSpec {
            machines,
            seeds: vec![seed],
            profiles: vec![profile],
            ablations: vec![None],
            max_retries: 2,
        }
    }

    /// Expands the dimensions into the deterministic job list (machines
    /// outermost, then seeds, profiles, ablations). Duplicate dimension
    /// values (e.g. `--machines 1-3,2`) collapse to one job each — job ids
    /// key the journal and the store, so a duplicated id could never be
    /// accounted as two completions.
    pub fn jobs(&self) -> Vec<JobSpec> {
        let mut seen = std::collections::BTreeSet::new();
        let mut jobs = Vec::new();
        for &machine in &self.machines {
            for &seed in &self.seeds {
                for &profile in &self.profiles {
                    for &ablation in &self.ablations {
                        let job = JobSpec {
                            machine,
                            seed,
                            profile,
                            ablation,
                        };
                        if seen.insert(job.id()) {
                            jobs.push(job);
                        }
                    }
                }
            }
        }
        jobs
    }

    /// Serializes the spec as `key = value` lines; [`CampaignSpec::decode`]
    /// is the inverse.
    pub fn encode(&self) -> String {
        let join = |items: Vec<String>| items.join(",");
        format!(
            concat!(
                "# dramdig campaign spec\n",
                "machines = {}\n",
                "seeds = {}\n",
                "profiles = {}\n",
                "ablations = {}\n",
                "max_retries = {}\n",
            ),
            join(self.machines.iter().map(u8::to_string).collect()),
            join(self.seeds.iter().map(u64::to_string).collect()),
            join(
                self.profiles
                    .iter()
                    .map(|p| p.as_str().to_string())
                    .collect()
            ),
            join(
                self.ablations
                    .iter()
                    .map(|a| a.map_or("none".to_string(), |a| a.as_str().to_string()))
                    .collect()
            ),
            self.max_retries,
        )
    }

    /// Parses a spec written by [`CampaignSpec::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] for malformed lines, unknown keys or values,
    /// or a spec that expands to zero jobs.
    pub fn decode(text: &str) -> Result<Self, CodecError> {
        let mut machines = Vec::new();
        let mut seeds = Vec::new();
        let mut profiles = Vec::new();
        let mut ablations = Vec::new();
        let mut max_retries = 2;
        for (line, key, value) in codec::parse_kv_lines(text)? {
            match key {
                "machines" => {
                    for item in split_list(value) {
                        machines
                            .push(parse_machine_number(item).map_err(|e| CodecError::at(line, e))?);
                    }
                }
                "seeds" => {
                    for item in split_list(value) {
                        seeds.push(codec::parse_u64(line, key, item)?);
                    }
                }
                "profiles" => {
                    profiles
                        .extend(Profile::parse_list(value).map_err(|e| CodecError::at(line, e))?);
                }
                "ablations" => {
                    ablations
                        .extend(Ablation::parse_list(value).map_err(|e| CodecError::at(line, e))?);
                }
                "max_retries" => max_retries = codec::parse_u32(line, key, value)?,
                other => return Err(CodecError::at(line, format!("unknown spec key `{other}`"))),
            }
        }
        let spec = CampaignSpec {
            machines,
            seeds,
            profiles,
            ablations,
            max_retries,
        };
        if spec.jobs().is_empty() {
            return Err(CodecError::whole("spec expands to zero jobs"));
        }
        Ok(spec)
    }
}

fn split_list(value: &str) -> impl Iterator<Item = &str> {
    value.split(',').map(str::trim).filter(|s| !s.is_empty())
}

/// Parses one Table-II machine number, rejecting anything outside `1..=9`
/// instead of silently truncating (260 must not alias onto machine 4).
pub fn parse_machine_number(text: &str) -> Result<u8, String> {
    text.trim()
        .parse::<u8>()
        .ok()
        .filter(|m| (1..=9).contains(m))
        .ok_or_else(|| format!("invalid machine number `{text}` (expected 1..=9)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_ids_are_stable_and_unique() {
        let spec = CampaignSpec {
            machines: vec![4, 7],
            seeds: vec![1, 2],
            profiles: vec![Profile::Optimized, Profile::Naive],
            ablations: vec![None, Some(Ablation::SystemInfo)],
            max_retries: 1,
        };
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 2 * 2 * 2 * 2);
        let mut ids: Vec<String> = jobs.iter().map(JobSpec::id).collect();
        assert!(ids.contains(&"m4-s1-optimized".to_string()));
        assert!(ids.contains(&"m7-s2-naive-sysinfo".to_string()));
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), jobs.len(), "ids must be unique");
        assert_eq!(jobs[0].machine_label(), "No.4");
    }

    #[test]
    fn duplicate_dimension_values_collapse_to_one_job() {
        let spec = CampaignSpec {
            machines: vec![1, 2, 3, 2],
            seeds: vec![1, 1],
            profiles: vec![Profile::Fast, Profile::Fast],
            ablations: vec![None, None],
            max_retries: 0,
        };
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 3, "3 distinct ids, not 4*2*2*2 expansions");
        let ids: Vec<String> = jobs.iter().map(JobSpec::id).collect();
        assert_eq!(ids, vec!["m1-s1-fast", "m2-s1-fast", "m3-s1-fast"]);
    }

    #[test]
    fn machine_numbers_reject_out_of_range_instead_of_truncating() {
        assert_eq!(parse_machine_number("4").unwrap(), 4);
        assert_eq!(parse_machine_number(" 9 ").unwrap(), 9);
        // 260 would alias onto machine 4 under an `as u8` cast.
        assert!(parse_machine_number("260").is_err());
        assert!(parse_machine_number("0").is_err());
        assert!(parse_machine_number("10").is_err());
        assert!(parse_machine_number("x").is_err());
        assert!(CampaignSpec::decode(
            "machines = 260\nseeds = 1\nprofiles = fast\nablations = none\n"
        )
        .is_err());
    }

    #[test]
    fn list_parsers_are_shared_by_spec_and_cli() {
        assert_eq!(
            Profile::parse_list("naive, optimized").unwrap(),
            vec![Profile::Naive, Profile::Optimized]
        );
        assert!(Profile::parse_list("warp").unwrap_err().contains("warp"));
        assert_eq!(
            Ablation::parse_list("none,sysinfo").unwrap(),
            vec![None, Some(Ablation::SystemInfo)]
        );
        assert!(Ablation::parse_list("warp").unwrap_err().contains("warp"));
        assert_eq!(Profile::parse_list("").unwrap(), vec![]);
    }

    #[test]
    fn spec_round_trips_through_the_text_codec() {
        let spec = CampaignSpec {
            machines: vec![1, 2, 3, 4, 5, 6, 7, 8, 9],
            seeds: vec![7],
            profiles: vec![Profile::Fast],
            ablations: vec![
                None,
                Some(Ablation::Specifications),
                Some(Ablation::Empirical),
            ],
            max_retries: 3,
        };
        assert_eq!(CampaignSpec::decode(&spec.encode()).unwrap(), spec);
        let simple = CampaignSpec::new(vec![4], 1, Profile::Optimized);
        assert_eq!(CampaignSpec::decode(&simple.encode()).unwrap(), simple);
    }

    #[test]
    fn decode_rejects_bad_specs() {
        assert!(
            CampaignSpec::decode("machines = 1\n").is_err(),
            "no seeds/profiles"
        );
        assert!(CampaignSpec::decode("wat = 1\n").is_err());
        let base = "seeds = 1\nprofiles = optimized\nablations = none\n";
        assert!(CampaignSpec::decode(&format!("machines = x\n{base}")).is_err());
        assert!(CampaignSpec::decode(
            "machines = 1\nseeds = 1\nprofiles = warp\nablations = none\n"
        )
        .is_err());
        assert!(CampaignSpec::decode(
            "machines = 1\nseeds = 1\nprofiles = fast\nablations = wat\n"
        )
        .is_err());
    }

    #[test]
    fn profile_and_ablation_names_round_trip() {
        for p in Profile::ALL {
            assert_eq!(Profile::from_name(p.as_str()), Some(p));
        }
        for a in Ablation::ALL {
            assert_eq!(Ablation::from_name(a.as_str()), Some(a));
        }
        assert_eq!(Profile::from_name("warp"), None);
        assert_eq!(Ablation::from_name("warp"), None);
        assert_eq!(Profile::default(), Profile::Optimized);
        // Profiles resolve to the matching config constructors.
        assert_eq!(Profile::Naive.config(), DramDigConfig::naive());
        assert_eq!(Profile::Optimized.config(), DramDigConfig::optimized());
    }
}
