//! The generic worker pool underneath campaign-style orchestration.
//!
//! [`drain_pool`] owns the queue/retry/dead-letter mechanics that used to
//! live inside the campaign runner's worker loop, with the campaign-specific
//! parts (write-ahead journaling, checkpoint-directory lifecycle) injected
//! through [`PoolHooks`]. The scenario-matrix evaluation drains its
//! scenario × tool grid through the same pool with [`NoHooks`], and the
//! map/reduce coordinator drains work-unit leases across worker transports
//! through [`drain_pool_ctx`], so every workload shares one well-tested
//! scheduling core.
//!
//! Semantics inherited by every user:
//!
//! * the unit of scheduling is a [`Lease`]: the job **and its attempt
//!   number travel together**, so a lease stolen by another worker after an
//!   interruption retries at the same attempt instead of burning one retry
//!   per worker that ever held it;
//! * hooks run **under the pool lock** — `on_dequeued` fires before the job
//!   leaves the queue-side critical section (write-ahead), `on_settled`
//!   before the outcome is applied to the queue;
//! * a hook error poisons the pool: workers stop picking up jobs and the
//!   first error is returned;
//! * a failed attempt beyond `max_retries` is dead-lettered with its final
//!   reason, otherwise the job re-enters the queue at `attempt + 1`;
//! * an [`Attempt::Interrupted`] attempt (the worker died underneath the
//!   job) re-enters the queue at the **same** attempt — its phase
//!   checkpoints survive on disk — and the worker that reported it exits,
//!   so surviving workers steal the lease;
//! * `max_completions` caps completions of *this* drain (used to simulate
//!   interruptions) — in-flight jobs still settle.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One schedulable unit: a job plus the attempt number it runs at. The
/// attempt is a property of the lease — not of whichever worker happens to
/// hold it — so steals never double-count against the retry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease<J> {
    /// The job to run.
    pub job: J,
    /// The attempt this lease runs the job at (1-based).
    pub attempt: u32,
}

impl<J> Lease<J> {
    /// A lease of `job` at `attempt`.
    pub fn new(job: J, attempt: u32) -> Self {
        Lease { job, attempt }
    }
}

/// What one attempt of a job produced, as reported by the worker closure of
/// [`drain_pool_ctx`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Attempt<T> {
    /// The attempt succeeded.
    Completed(T),
    /// The attempt genuinely failed (counts against the retry budget).
    Failed(String),
    /// The worker died underneath the job (killed process, lost transport).
    /// The lease is re-queued at the same attempt for another worker to
    /// steal, and the reporting worker exits the drain.
    Interrupted(String),
}

/// How one settled attempt was classified by the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The attempt succeeded; the job is done.
    Completed,
    /// The attempt failed with retries left; the job re-enters the queue.
    Retrying,
    /// The attempt failed and exhausted the retry budget.
    Dead,
    /// The worker died mid-attempt; the lease re-enters the queue at the
    /// same attempt for another worker to steal.
    Interrupted,
}

/// Observer hooks invoked under the pool lock. The default implementations
/// do nothing, so a hook type only overrides what it needs.
pub trait PoolHooks<J, T> {
    /// Error type that aborts the whole drain (e.g. a journal IO failure).
    type Error;

    /// Called write-ahead, while the lock is held, before `run` sees the
    /// job.
    fn on_dequeued(&mut self, job: &J, attempt: u32) -> Result<(), Self::Error> {
        let _ = (job, attempt);
        Ok(())
    }

    /// Called while the lock is held, after `run` returned and the verdict
    /// is known but before the queue or result lists are updated.
    fn on_settled(
        &mut self,
        job: &J,
        attempt: u32,
        result: &Result<T, String>,
        verdict: Verdict,
    ) -> Result<(), Self::Error> {
        let _ = (job, attempt, result, verdict);
        Ok(())
    }
}

/// Hook-less pool use (the scenario evaluation, tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl<J, T> PoolHooks<J, T> for NoHooks {
    type Error = std::convert::Infallible;
}

/// Hooks that count pool activity into a [`telemetry::Registry`] and then
/// delegate to an inner hook type.
///
/// Every increment happens under the pool lock and the counters are
/// order-independent totals, so the final snapshot is deterministic even
/// though worker interleaving is not:
///
/// * `pool_dequeued_total` — attempts handed to workers,
/// * `pool_retries_total` — attempts that settled [`Verdict::Retrying`],
/// * `pool_steals_total` — attempts that settled [`Verdict::Interrupted`]
///   (the lease went back for another worker to steal),
/// * `pool_completed_total` / `pool_dead_total` — terminal verdicts,
/// * `pool_queue_depth` — gauge, seeded by [`MeteredHooks::new`] with the
///   initial queue depth (its peak — jobs only re-enter one at a time).
#[derive(Debug)]
pub struct MeteredHooks<'m, H> {
    inner: H,
    metrics: &'m mut telemetry::Registry,
}

impl<'m, H> MeteredHooks<'m, H> {
    /// Wraps `inner`, recording `queue_depth` (the number of jobs about to
    /// be drained) and all subsequent pool activity into `metrics`.
    pub fn new(inner: H, metrics: &'m mut telemetry::Registry, queue_depth: usize) -> Self {
        metrics.gauge_max("pool_queue_depth", queue_depth as i64);
        MeteredHooks { inner, metrics }
    }
}

impl<J, T, H: PoolHooks<J, T>> PoolHooks<J, T> for MeteredHooks<'_, H> {
    type Error = H::Error;

    fn on_dequeued(&mut self, job: &J, attempt: u32) -> Result<(), Self::Error> {
        self.metrics.counter_add("pool_dequeued_total", 1);
        self.inner.on_dequeued(job, attempt)
    }

    fn on_settled(
        &mut self,
        job: &J,
        attempt: u32,
        result: &Result<T, String>,
        verdict: Verdict,
    ) -> Result<(), Self::Error> {
        let counter = match verdict {
            Verdict::Completed => "pool_completed_total",
            Verdict::Retrying => "pool_retries_total",
            Verdict::Dead => "pool_dead_total",
            Verdict::Interrupted => "pool_steals_total",
        };
        self.metrics.counter_add(counter, 1);
        self.inner.on_settled(job, attempt, result, verdict)
    }
}

/// Scheduling knobs of one [`drain_pool`] invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolConfig {
    /// Worker threads draining the queue (clamped to at least 1).
    pub workers: usize,
    /// Failed attempts beyond this count are dead-lettered (0 = one try).
    pub max_retries: u32,
    /// Stop picking up new jobs once this many completed in this drain.
    pub max_completions: Option<usize>,
}

impl PoolConfig {
    /// A pool with `workers` threads and no retries or caps.
    pub fn workers(workers: usize) -> Self {
        PoolConfig {
            workers,
            max_retries: 0,
            max_completions: None,
        }
    }
}

/// What one [`drain_pool`] invocation produced.
#[derive(Debug)]
pub struct PoolOutcome<J, T> {
    /// Completed jobs with their successful attempt number, in completion
    /// order (nondeterministic across workers — sort by job identity when
    /// determinism matters).
    pub completed: Vec<(J, u32, T)>,
    /// Dead-lettered jobs with their final failure reason.
    pub dead: Vec<(J, String)>,
    /// Leases still queued when the drain ended: the completion cap was
    /// hit, or every worker died before the queue emptied. Nothing was
    /// lost — each abandoned lease resumes at its recorded attempt.
    pub abandoned: Vec<Lease<J>>,
}

struct Shared<'h, J, T, H: PoolHooks<J, T>> {
    queue: VecDeque<Lease<J>>,
    hooks: &'h mut H,
    completions: usize,
    completed: Vec<(J, u32, T)>,
    dead: Vec<(J, String)>,
    failure: Option<H::Error>,
}

/// Drains `jobs` (each paired with its first attempt number) through `run`
/// on a scoped worker pool.
///
/// # Errors
///
/// Returns the first hook error; job failures are not errors — they are
/// retried and eventually dead-lettered into the outcome.
pub fn drain_pool<J, T, H, R>(
    jobs: impl IntoIterator<Item = (J, u32)>,
    config: &PoolConfig,
    hooks: &mut H,
    run: R,
) -> Result<PoolOutcome<J, T>, H::Error>
where
    J: Send,
    T: Send,
    H: PoolHooks<J, T> + Send,
    H::Error: Send,
    R: Fn(&J, u32) -> Result<T, String> + Sync,
{
    // Unit contexts: plain threads with no per-worker state, and plain
    // failures (never Interrupted), so the classic retry semantics hold.
    let contexts = vec![(); config.workers.max(1)];
    drain_pool_ctx(
        jobs.into_iter()
            .map(|(job, attempt)| Lease { job, attempt }),
        config,
        hooks,
        contexts,
        |(), job, attempt| {
            Ok(match run(job, attempt) {
                Ok(value) => Attempt::Completed(value),
                Err(reason) => Attempt::Failed(reason),
            })
        },
    )
}

/// [`drain_pool`] generalized over per-worker contexts: each worker thread
/// exclusively owns one element of `contexts` (a transport to a worker
/// process, a journal handle, …) for its whole life. The worker count is
/// `contexts.len()`.
///
/// `run` classifies each attempt as [`Attempt::Completed`],
/// [`Attempt::Failed`] (burns a retry) or [`Attempt::Interrupted`] (the
/// context's backing worker died: the lease is re-queued **at the same
/// attempt** for a surviving worker to steal, and this worker exits).
/// `run` returning `Err` poisons the pool like a hook error.
///
/// # Errors
///
/// Returns the first hook or `run` error.
pub fn drain_pool_ctx<J, T, H, C, R>(
    jobs: impl IntoIterator<Item = Lease<J>>,
    config: &PoolConfig,
    hooks: &mut H,
    contexts: Vec<C>,
    run: R,
) -> Result<PoolOutcome<J, T>, H::Error>
where
    J: Send,
    T: Send,
    C: Send,
    H: PoolHooks<J, T> + Send,
    H::Error: Send,
    R: Fn(&mut C, &J, u32) -> Result<Attempt<T>, H::Error> + Sync,
{
    let shared = Mutex::new(Shared {
        queue: jobs.into_iter().collect(),
        hooks,
        completions: 0,
        completed: Vec::new(),
        dead: Vec::new(),
        failure: None,
    });

    std::thread::scope(|scope| {
        for mut context in contexts {
            let shared = &shared;
            let run = &run;
            scope.spawn(move || worker_loop(shared, config, &mut context, run));
        }
    });

    let state = shared
        .into_inner()
        .expect("no worker panicked with the lock");
    if let Some(error) = state.failure {
        return Err(error);
    }
    Ok(PoolOutcome {
        completed: state.completed,
        dead: state.dead,
        abandoned: state.queue.into_iter().collect(),
    })
}

fn worker_loop<J, T, H, C, R>(
    shared: &Mutex<Shared<'_, J, T, H>>,
    config: &PoolConfig,
    context: &mut C,
    run: &R,
) where
    H: PoolHooks<J, T>,
    R: Fn(&mut C, &J, u32) -> Result<Attempt<T>, H::Error>,
{
    loop {
        let Lease { job, attempt } = {
            let mut guard = shared.lock().expect("pool lock");
            if guard.failure.is_some() {
                return;
            }
            if let Some(limit) = config.max_completions {
                if guard.completions >= limit {
                    return;
                }
            }
            let Some(lease) = guard.queue.pop_front() else {
                return;
            };
            if let Err(e) = guard.hooks.on_dequeued(&lease.job, lease.attempt) {
                guard.failure = Some(e);
                return;
            }
            lease
        };

        let outcome = match run(context, &job, attempt) {
            Ok(outcome) => outcome,
            Err(e) => {
                shared.lock().expect("pool lock").failure = Some(e);
                return;
            }
        };

        let mut guard = shared.lock().expect("pool lock");
        let (result, verdict) = match outcome {
            Attempt::Completed(value) => (Ok(value), Verdict::Completed),
            Attempt::Failed(reason) if attempt > config.max_retries => (Err(reason), Verdict::Dead),
            Attempt::Failed(reason) => (Err(reason), Verdict::Retrying),
            Attempt::Interrupted(reason) => (Err(reason), Verdict::Interrupted),
        };
        if let Err(e) = guard.hooks.on_settled(&job, attempt, &result, verdict) {
            guard.failure = Some(e);
            return;
        }
        match (result, verdict) {
            (Ok(value), _) => {
                guard.completions += 1;
                guard.completed.push((job, attempt, value));
            }
            (Err(reason), Verdict::Dead) => guard.dead.push((job, reason)),
            (Err(_), Verdict::Interrupted) => {
                // The same attempt goes back at the head of the queue: its
                // phase checkpoints are still on disk, so the stealing
                // worker resumes mid-pipeline instead of restarting. This
                // worker's backing process is gone — exit the loop.
                guard.queue.push_front(Lease { job, attempt });
                return;
            }
            (Err(_), _) => guard.queue.push_back(Lease::new(job, attempt + 1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn first_attempts<J>(jobs: impl IntoIterator<Item = J>) -> Vec<(J, u32)> {
        jobs.into_iter().map(|j| (j, 1)).collect()
    }

    #[test]
    fn drains_every_job_exactly_once_across_workers() {
        let jobs: Vec<u32> = (0..50).collect();
        let outcome = drain_pool(
            first_attempts(jobs),
            &PoolConfig::workers(8),
            &mut NoHooks,
            |&job, _| Ok(job * 2),
        )
        .unwrap();
        assert!(outcome.dead.is_empty());
        assert!(outcome.abandoned.is_empty());
        let mut done: Vec<(u32, u32)> = outcome
            .completed
            .into_iter()
            .map(|(j, _, v)| (j, v))
            .collect();
        done.sort_unstable();
        assert_eq!(done.len(), 50);
        for (j, v) in done {
            assert_eq!(v, j * 2);
        }
    }

    #[test]
    fn retries_then_dead_letters() {
        let calls = AtomicU32::new(0);
        let config = PoolConfig {
            workers: 1,
            max_retries: 2,
            max_completions: None,
        };
        let outcome = drain_pool(
            first_attempts(["flaky"]),
            &config,
            &mut NoHooks,
            |_, attempt| {
                calls.fetch_add(1, Ordering::SeqCst);
                if attempt < 3 {
                    Err(format!("attempt {attempt} failed"))
                } else {
                    Ok(attempt)
                }
            },
        )
        .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(outcome.completed[0].1, 3);

        let outcome = drain_pool(first_attempts(["doomed"]), &config, &mut NoHooks, |_, _| {
            Err::<u32, _>("always".into())
        })
        .unwrap();
        assert!(outcome.completed.is_empty());
        assert_eq!(outcome.dead, vec![("doomed", "always".to_string())]);
    }

    #[test]
    fn completion_cap_stops_new_work() {
        let config = PoolConfig {
            workers: 1,
            max_retries: 0,
            max_completions: Some(2),
        };
        let outcome = drain_pool(first_attempts(0..10u32), &config, &mut NoHooks, |&j, _| {
            Ok(j)
        })
        .unwrap();
        assert_eq!(outcome.completed.len(), 2);
        // The uncompleted jobs survive as abandoned leases at attempt 1.
        assert_eq!(outcome.abandoned.len(), 8);
        assert!(outcome.abandoned.iter().all(|lease| lease.attempt == 1));
    }

    /// Hooks observe the write-ahead order and can abort the drain.
    struct Recording {
        events: Vec<String>,
        fail_on_settle: bool,
    }

    impl PoolHooks<&'static str, u32> for Recording {
        type Error = String;

        fn on_dequeued(&mut self, job: &&'static str, attempt: u32) -> Result<(), String> {
            self.events.push(format!("dequeued {job} #{attempt}"));
            Ok(())
        }

        fn on_settled(
            &mut self,
            job: &&'static str,
            attempt: u32,
            _result: &Result<u32, String>,
            verdict: Verdict,
        ) -> Result<(), String> {
            self.events
                .push(format!("settled {job} #{attempt} {verdict:?}"));
            if self.fail_on_settle {
                return Err("journal broke".into());
            }
            Ok(())
        }
    }

    #[test]
    fn hooks_fire_write_ahead_and_see_verdicts() {
        let mut hooks = Recording {
            events: Vec::new(),
            fail_on_settle: false,
        };
        let config = PoolConfig {
            workers: 1,
            max_retries: 1,
            max_completions: None,
        };
        drain_pool(first_attempts(["j"]), &config, &mut hooks, |_, attempt| {
            if attempt == 1 {
                Err("noise".into())
            } else {
                Ok(attempt)
            }
        })
        .unwrap();
        assert_eq!(
            hooks.events,
            vec![
                "dequeued j #1",
                "settled j #1 Retrying",
                "dequeued j #2",
                "settled j #2 Completed",
            ]
        );
    }

    #[test]
    fn metered_hooks_count_deterministically_across_workers() {
        let drain = |workers: usize| {
            let mut metrics = telemetry::Registry::new();
            let config = PoolConfig {
                workers,
                max_retries: 1,
                max_completions: None,
            };
            let jobs: Vec<u32> = (0..20).collect();
            let depth = jobs.len();
            let mut hooks = MeteredHooks::new(NoHooks, &mut metrics, depth);
            drain_pool(first_attempts(jobs), &config, &mut hooks, |&j, attempt| {
                if j % 5 == 0 && attempt == 1 {
                    Err("noise".into())
                } else if j == 15 {
                    Err("always".into())
                } else {
                    Ok(j)
                }
            })
            .unwrap();
            metrics.snapshot()
        };
        let snap = drain(1);
        // Same totals regardless of worker interleaving.
        assert_eq!(snap, drain(7));
        let metrics = telemetry::Registry::parse_snapshot(&snap).unwrap();
        // Jobs 0,5,10 retry once then complete; job 15 retries then dies.
        assert_eq!(metrics.counter("pool_completed_total"), 19);
        assert_eq!(metrics.counter("pool_retries_total"), 4);
        assert_eq!(metrics.counter("pool_dead_total"), 1);
        assert_eq!(metrics.counter("pool_dequeued_total"), 24);
        assert_eq!(metrics.gauge("pool_queue_depth"), 20);
    }

    #[test]
    fn hook_errors_abort_the_drain() {
        let mut hooks = Recording {
            events: Vec::new(),
            fail_on_settle: true,
        };
        let err = drain_pool(
            first_attempts(["a", "b"]),
            &PoolConfig::workers(1),
            &mut hooks,
            |_, _| Ok(1),
        )
        .unwrap_err();
        assert_eq!(err, "journal broke");
        // The drain stopped after the first settle: "b" was never dequeued.
        assert_eq!(hooks.events.len(), 2);
    }

    /// A fake per-worker transport: worker `0` dies when it first touches
    /// the designated job; every other worker completes everything.
    struct FlakyWorker {
        id: usize,
        dead: bool,
    }

    #[test]
    fn a_stolen_lease_retries_at_the_same_attempt() {
        // The satellite bugfix regression: a lease interrupted on worker 0
        // must be re-run by a surviving worker at the SAME attempt — the
        // steal must not count against the retry budget of either worker.
        let config = PoolConfig {
            workers: 2,
            max_retries: 0, // any burned retry would dead-letter the job
            max_completions: None,
        };
        let contexts = vec![
            FlakyWorker { id: 0, dead: false },
            FlakyWorker { id: 1, dead: false },
        ];
        let mut hooks = Recording {
            events: Vec::new(),
            fail_on_settle: false,
        };
        let outcome = drain_pool_ctx(
            [Lease::new("victim", 1), Lease::new("other", 1)],
            &config,
            &mut hooks,
            contexts,
            |worker: &mut FlakyWorker, job, attempt| {
                if worker.id == 0 && *job == "victim" {
                    worker.dead = true;
                }
                if worker.dead {
                    return Ok(Attempt::Interrupted("kill -9".into()));
                }
                Ok(Attempt::Completed(attempt))
            },
        )
        .unwrap();
        assert!(outcome.dead.is_empty(), "{:?}", outcome.dead);
        assert!(outcome.abandoned.is_empty());
        let mut done: Vec<(&str, u32)> = outcome
            .completed
            .iter()
            .map(|(j, attempt, _)| (*j, *attempt))
            .collect();
        done.sort_unstable();
        // Both jobs completed at attempt 1: the interruption burned nothing.
        assert_eq!(done, vec![("other", 1), ("victim", 1)]);
        // The hooks saw the interruption verdict (write-ahead, same attempt)
        // before the completing steal.
        assert!(hooks
            .events
            .contains(&"settled victim #1 Interrupted".to_string()));
        assert!(hooks
            .events
            .contains(&"settled victim #1 Completed".to_string()));
    }

    #[test]
    fn all_workers_dead_leaves_abandoned_leases() {
        let config = PoolConfig {
            workers: 2,
            max_retries: 2,
            max_completions: None,
        };
        let contexts = vec![0usize, 1usize];
        let outcome = drain_pool_ctx(
            (0..6u32).map(|j| Lease::new(j, 1)),
            &config,
            &mut NoHooks,
            contexts,
            |_worker, _job, _attempt| Ok(Attempt::<u32>::Interrupted("lost".into())),
        )
        .unwrap();
        assert!(outcome.completed.is_empty());
        assert!(outcome.dead.is_empty());
        // Two workers each died on their first lease; the two leases went
        // back to the queue head, so all six jobs survive at attempt 1.
        assert_eq!(outcome.abandoned.len(), 6);
        assert!(outcome.abandoned.iter().all(|lease| lease.attempt == 1));
    }

    #[test]
    fn interruptions_count_as_steals_in_the_metrics() {
        let mut metrics = telemetry::Registry::new();
        let config = PoolConfig {
            workers: 2,
            max_retries: 0,
            max_completions: None,
        };
        let mut hooks = MeteredHooks::new(NoHooks, &mut metrics, 2);
        let contexts = vec![
            FlakyWorker { id: 0, dead: false },
            FlakyWorker { id: 1, dead: false },
        ];
        drain_pool_ctx(
            [Lease::new("victim", 1), Lease::new("other", 1)],
            &config,
            &mut hooks,
            contexts,
            |worker: &mut FlakyWorker, job, attempt| {
                if worker.id == 0 && *job == "victim" {
                    worker.dead = true;
                }
                if worker.dead {
                    return Ok(Attempt::Interrupted("kill -9".into()));
                }
                Ok(Attempt::Completed(attempt))
            },
        )
        .unwrap();
        let snapshot = telemetry::Registry::parse_snapshot(&metrics.snapshot()).unwrap();
        assert_eq!(snapshot.counter("pool_steals_total"), 1);
        assert_eq!(snapshot.counter("pool_completed_total"), 2);
        assert_eq!(snapshot.counter("pool_retries_total"), 0);
        assert_eq!(snapshot.counter("pool_dead_total"), 0);
    }
}
