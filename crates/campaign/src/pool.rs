//! The generic worker pool underneath campaign-style orchestration.
//!
//! [`drain_pool`] owns the queue/retry/dead-letter mechanics that used to
//! live inside the campaign runner's worker loop, with the campaign-specific
//! parts (write-ahead journaling, checkpoint-directory lifecycle) injected
//! through [`PoolHooks`]. The scenario-matrix evaluation drains its
//! scenario × tool grid through the same pool with [`NoHooks`], so both
//! workloads share one well-tested scheduling core.
//!
//! Semantics inherited by every user:
//!
//! * hooks run **under the pool lock** — `on_dequeued` fires before the job
//!   leaves the queue-side critical section (write-ahead), `on_settled`
//!   before the outcome is applied to the queue;
//! * a hook error poisons the pool: workers stop picking up jobs and the
//!   first error is returned;
//! * a failed attempt beyond `max_retries` is dead-lettered with its final
//!   reason, otherwise the job re-enters the queue at `attempt + 1`;
//! * `max_completions` caps completions of *this* drain (used to simulate
//!   interruptions) — in-flight jobs still settle.

use std::collections::VecDeque;
use std::sync::Mutex;

/// How one settled attempt was classified by the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The attempt succeeded; the job is done.
    Completed,
    /// The attempt failed with retries left; the job re-enters the queue.
    Retrying,
    /// The attempt failed and exhausted the retry budget.
    Dead,
}

/// Observer hooks invoked under the pool lock. The default implementations
/// do nothing, so a hook type only overrides what it needs.
pub trait PoolHooks<J, T> {
    /// Error type that aborts the whole drain (e.g. a journal IO failure).
    type Error;

    /// Called write-ahead, while the lock is held, before `run` sees the
    /// job.
    fn on_dequeued(&mut self, job: &J, attempt: u32) -> Result<(), Self::Error> {
        let _ = (job, attempt);
        Ok(())
    }

    /// Called while the lock is held, after `run` returned and the verdict
    /// is known but before the queue or result lists are updated.
    fn on_settled(
        &mut self,
        job: &J,
        attempt: u32,
        result: &Result<T, String>,
        verdict: Verdict,
    ) -> Result<(), Self::Error> {
        let _ = (job, attempt, result, verdict);
        Ok(())
    }
}

/// Hook-less pool use (the scenario evaluation, tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl<J, T> PoolHooks<J, T> for NoHooks {
    type Error = std::convert::Infallible;
}

/// Hooks that count pool activity into a [`telemetry::Registry`] and then
/// delegate to an inner hook type.
///
/// Every increment happens under the pool lock and the counters are
/// order-independent totals, so the final snapshot is deterministic even
/// though worker interleaving is not:
///
/// * `pool_dequeued_total` — attempts handed to workers,
/// * `pool_retries_total` — attempts that settled [`Verdict::Retrying`],
/// * `pool_completed_total` / `pool_dead_total` — terminal verdicts,
/// * `pool_queue_depth` — gauge, seeded by [`MeteredHooks::new`] with the
///   initial queue depth (its peak — jobs only re-enter one at a time).
#[derive(Debug)]
pub struct MeteredHooks<'m, H> {
    inner: H,
    metrics: &'m mut telemetry::Registry,
}

impl<'m, H> MeteredHooks<'m, H> {
    /// Wraps `inner`, recording `queue_depth` (the number of jobs about to
    /// be drained) and all subsequent pool activity into `metrics`.
    pub fn new(inner: H, metrics: &'m mut telemetry::Registry, queue_depth: usize) -> Self {
        metrics.gauge_max("pool_queue_depth", queue_depth as i64);
        MeteredHooks { inner, metrics }
    }
}

impl<J, T, H: PoolHooks<J, T>> PoolHooks<J, T> for MeteredHooks<'_, H> {
    type Error = H::Error;

    fn on_dequeued(&mut self, job: &J, attempt: u32) -> Result<(), Self::Error> {
        self.metrics.counter_add("pool_dequeued_total", 1);
        self.inner.on_dequeued(job, attempt)
    }

    fn on_settled(
        &mut self,
        job: &J,
        attempt: u32,
        result: &Result<T, String>,
        verdict: Verdict,
    ) -> Result<(), Self::Error> {
        let counter = match verdict {
            Verdict::Completed => "pool_completed_total",
            Verdict::Retrying => "pool_retries_total",
            Verdict::Dead => "pool_dead_total",
        };
        self.metrics.counter_add(counter, 1);
        self.inner.on_settled(job, attempt, result, verdict)
    }
}

/// Scheduling knobs of one [`drain_pool`] invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolConfig {
    /// Worker threads draining the queue (clamped to at least 1).
    pub workers: usize,
    /// Failed attempts beyond this count are dead-lettered (0 = one try).
    pub max_retries: u32,
    /// Stop picking up new jobs once this many completed in this drain.
    pub max_completions: Option<usize>,
}

impl PoolConfig {
    /// A pool with `workers` threads and no retries or caps.
    pub fn workers(workers: usize) -> Self {
        PoolConfig {
            workers,
            max_retries: 0,
            max_completions: None,
        }
    }
}

/// What one [`drain_pool`] invocation produced.
#[derive(Debug)]
pub struct PoolOutcome<J, T> {
    /// Completed jobs with their successful attempt number, in completion
    /// order (nondeterministic across workers — sort by job identity when
    /// determinism matters).
    pub completed: Vec<(J, u32, T)>,
    /// Dead-lettered jobs with their final failure reason.
    pub dead: Vec<(J, String)>,
}

struct Shared<'h, J, T, H: PoolHooks<J, T>> {
    queue: VecDeque<(J, u32)>,
    hooks: &'h mut H,
    completions: usize,
    completed: Vec<(J, u32, T)>,
    dead: Vec<(J, String)>,
    failure: Option<H::Error>,
}

/// Drains `jobs` (each paired with its first attempt number) through `run`
/// on a scoped worker pool.
///
/// # Errors
///
/// Returns the first hook error; job failures are not errors — they are
/// retried and eventually dead-lettered into the outcome.
pub fn drain_pool<J, T, H, R>(
    jobs: impl IntoIterator<Item = (J, u32)>,
    config: &PoolConfig,
    hooks: &mut H,
    run: R,
) -> Result<PoolOutcome<J, T>, H::Error>
where
    J: Send,
    T: Send,
    H: PoolHooks<J, T> + Send,
    H::Error: Send,
    R: Fn(&J, u32) -> Result<T, String> + Sync,
{
    let shared = Mutex::new(Shared {
        queue: jobs.into_iter().collect(),
        hooks,
        completions: 0,
        completed: Vec::new(),
        dead: Vec::new(),
        failure: None,
    });

    std::thread::scope(|scope| {
        for _ in 0..config.workers.max(1) {
            scope.spawn(|| worker_loop(&shared, config, &run));
        }
    });

    let state = shared
        .into_inner()
        .expect("no worker panicked with the lock");
    if let Some(error) = state.failure {
        return Err(error);
    }
    Ok(PoolOutcome {
        completed: state.completed,
        dead: state.dead,
    })
}

fn worker_loop<J, T, H, R>(shared: &Mutex<Shared<'_, J, T, H>>, config: &PoolConfig, run: &R)
where
    H: PoolHooks<J, T>,
    R: Fn(&J, u32) -> Result<T, String>,
{
    loop {
        let (job, attempt) = {
            let mut guard = shared.lock().expect("pool lock");
            if guard.failure.is_some() {
                return;
            }
            if let Some(limit) = config.max_completions {
                if guard.completions >= limit {
                    return;
                }
            }
            let Some((job, attempt)) = guard.queue.pop_front() else {
                return;
            };
            if let Err(e) = guard.hooks.on_dequeued(&job, attempt) {
                guard.failure = Some(e);
                return;
            }
            (job, attempt)
        };

        let result = run(&job, attempt);

        let mut guard = shared.lock().expect("pool lock");
        let verdict = match &result {
            Ok(_) => Verdict::Completed,
            Err(_) if attempt > config.max_retries => Verdict::Dead,
            Err(_) => Verdict::Retrying,
        };
        if let Err(e) = guard.hooks.on_settled(&job, attempt, &result, verdict) {
            guard.failure = Some(e);
            return;
        }
        match result {
            Ok(value) => {
                guard.completions += 1;
                guard.completed.push((job, attempt, value));
            }
            Err(reason) => match verdict {
                Verdict::Dead => guard.dead.push((job, reason)),
                _ => guard.queue.push_back((job, attempt + 1)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn first_attempts<J>(jobs: impl IntoIterator<Item = J>) -> Vec<(J, u32)> {
        jobs.into_iter().map(|j| (j, 1)).collect()
    }

    #[test]
    fn drains_every_job_exactly_once_across_workers() {
        let jobs: Vec<u32> = (0..50).collect();
        let outcome = drain_pool(
            first_attempts(jobs),
            &PoolConfig::workers(8),
            &mut NoHooks,
            |&job, _| Ok(job * 2),
        )
        .unwrap();
        assert!(outcome.dead.is_empty());
        let mut done: Vec<(u32, u32)> = outcome
            .completed
            .into_iter()
            .map(|(j, _, v)| (j, v))
            .collect();
        done.sort_unstable();
        assert_eq!(done.len(), 50);
        for (j, v) in done {
            assert_eq!(v, j * 2);
        }
    }

    #[test]
    fn retries_then_dead_letters() {
        let calls = AtomicU32::new(0);
        let config = PoolConfig {
            workers: 1,
            max_retries: 2,
            max_completions: None,
        };
        let outcome = drain_pool(
            first_attempts(["flaky"]),
            &config,
            &mut NoHooks,
            |_, attempt| {
                calls.fetch_add(1, Ordering::SeqCst);
                if attempt < 3 {
                    Err(format!("attempt {attempt} failed"))
                } else {
                    Ok(attempt)
                }
            },
        )
        .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(outcome.completed[0].1, 3);

        let outcome = drain_pool(first_attempts(["doomed"]), &config, &mut NoHooks, |_, _| {
            Err::<u32, _>("always".into())
        })
        .unwrap();
        assert!(outcome.completed.is_empty());
        assert_eq!(outcome.dead, vec![("doomed", "always".to_string())]);
    }

    #[test]
    fn completion_cap_stops_new_work() {
        let config = PoolConfig {
            workers: 1,
            max_retries: 0,
            max_completions: Some(2),
        };
        let outcome = drain_pool(first_attempts(0..10u32), &config, &mut NoHooks, |&j, _| {
            Ok(j)
        })
        .unwrap();
        assert_eq!(outcome.completed.len(), 2);
    }

    /// Hooks observe the write-ahead order and can abort the drain.
    struct Recording {
        events: Vec<String>,
        fail_on_settle: bool,
    }

    impl PoolHooks<&'static str, u32> for Recording {
        type Error = String;

        fn on_dequeued(&mut self, job: &&'static str, attempt: u32) -> Result<(), String> {
            self.events.push(format!("dequeued {job} #{attempt}"));
            Ok(())
        }

        fn on_settled(
            &mut self,
            job: &&'static str,
            attempt: u32,
            _result: &Result<u32, String>,
            verdict: Verdict,
        ) -> Result<(), String> {
            self.events
                .push(format!("settled {job} #{attempt} {verdict:?}"));
            if self.fail_on_settle {
                return Err("journal broke".into());
            }
            Ok(())
        }
    }

    #[test]
    fn hooks_fire_write_ahead_and_see_verdicts() {
        let mut hooks = Recording {
            events: Vec::new(),
            fail_on_settle: false,
        };
        let config = PoolConfig {
            workers: 1,
            max_retries: 1,
            max_completions: None,
        };
        drain_pool(first_attempts(["j"]), &config, &mut hooks, |_, attempt| {
            if attempt == 1 {
                Err("noise".into())
            } else {
                Ok(attempt)
            }
        })
        .unwrap();
        assert_eq!(
            hooks.events,
            vec![
                "dequeued j #1",
                "settled j #1 Retrying",
                "dequeued j #2",
                "settled j #2 Completed",
            ]
        );
    }

    #[test]
    fn metered_hooks_count_deterministically_across_workers() {
        let drain = |workers: usize| {
            let mut metrics = telemetry::Registry::new();
            let config = PoolConfig {
                workers,
                max_retries: 1,
                max_completions: None,
            };
            let jobs: Vec<u32> = (0..20).collect();
            let depth = jobs.len();
            let mut hooks = MeteredHooks::new(NoHooks, &mut metrics, depth);
            drain_pool(first_attempts(jobs), &config, &mut hooks, |&j, attempt| {
                if j % 5 == 0 && attempt == 1 {
                    Err("noise".into())
                } else if j == 15 {
                    Err("always".into())
                } else {
                    Ok(j)
                }
            })
            .unwrap();
            metrics.snapshot()
        };
        let snap = drain(1);
        // Same totals regardless of worker interleaving.
        assert_eq!(snap, drain(7));
        let metrics = telemetry::Registry::parse_snapshot(&snap).unwrap();
        // Jobs 0,5,10 retry once then complete; job 15 retries then dies.
        assert_eq!(metrics.counter("pool_completed_total"), 19);
        assert_eq!(metrics.counter("pool_retries_total"), 4);
        assert_eq!(metrics.counter("pool_dead_total"), 1);
        assert_eq!(metrics.counter("pool_dequeued_total"), 24);
        assert_eq!(metrics.gauge("pool_queue_depth"), 20);
    }

    #[test]
    fn hook_errors_abort_the_drain() {
        let mut hooks = Recording {
            events: Vec::new(),
            fail_on_settle: true,
        };
        let err = drain_pool(
            first_attempts(["a", "b"]),
            &PoolConfig::workers(1),
            &mut hooks,
            |_, _| Ok(1),
        )
        .unwrap_err();
        assert_eq!(err, "journal broke");
        // The drain stopped after the first settle: "b" was never dequeued.
        assert_eq!(hooks.events.len(), 2);
    }
}
