//! The campaign's write-ahead journal.
//!
//! Every state transition of every job is appended (and flushed) to a JSONL
//! file *before* the orchestrator acts on it, so a campaign killed at any
//! point resumes from its last completed job instead of restarting:
//!
//! ```text
//! {"kind":"started","job":"m4-s1-optimized","attempt":1}
//! {"kind":"completed","job":"m4-s1-optimized","attempt":1,"report":"funcs = ...\n..."}
//! {"kind":"failed","job":"m6-s1-optimized","attempt":1,"reason":"validation: ..."}
//! {"kind":"dead","job":"m6-s1-optimized","attempts":3,"reason":"validation: ..."}
//! ```
//!
//! [`JournalState::replay`] folds a record sequence into the **resume
//! frontier**: which jobs are done (with their decoded
//! [`RecoveryReport`]s), which are dead-lettered, and at which attempt a
//! still-pending job should continue. Replay is order-independent across
//! distinct jobs — interleavings produced by different worker schedules all
//! fold to the same frontier (see `tests/journal_props.rs`).

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};

use dramdig::RecoveryReport;

use crate::jsonl::{self, JsonValue};
use crate::spec::{CampaignSpec, JobSpec};

/// One journal entry.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A worker picked the job up (write-ahead marker; carries no completion
    /// guarantee).
    Started {
        /// Job id.
        job: String,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// The job finished and produced a report.
    Completed {
        /// Job id.
        job: String,
        /// 1-based attempt number that succeeded.
        attempt: u32,
        /// The run's durable outcome.
        report: RecoveryReport,
    },
    /// One attempt failed; the job will be retried.
    Failed {
        /// Job id.
        job: String,
        /// 1-based attempt number that failed.
        attempt: u32,
        /// Failure reason.
        reason: String,
    },
    /// The job exhausted its retry budget and was dead-lettered.
    Dead {
        /// Job id.
        job: String,
        /// Total attempts made.
        attempts: u32,
        /// Final failure reason.
        reason: String,
    },
    /// The job's phase checkpoints live at this path (write-ahead marker:
    /// recorded when the worker hands the path to the job runner, so a
    /// later resume — even one started without phase checkpointing enabled
    /// — finds the surviving artifacts and restarts from the last phase
    /// boundary instead of from scratch).
    Checkpoint {
        /// Job id.
        job: String,
        /// Directory holding the job's phase checkpoints.
        path: String,
    },
    /// A dead-lettered job was put back in play by a DLQ operation
    /// (`dramdig campaign dlq retry|reprocess`).
    Requeued {
        /// Job id.
        job: String,
        /// How the job re-enters the queue.
        mode: RequeueMode,
    },
}

/// How a dead-lettered job re-enters the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequeueMode {
    /// Keep the attempt history: the next run continues at one past the
    /// dead-lettered attempt count, so it draws a *fresh* attempt-derived
    /// seed instead of replaying the sequence that already failed.
    Retry,
    /// Forget the attempt history entirely (the operator fixed the
    /// environment or config): the next run restarts at attempt 1 with the
    /// job's base seed, as if the job had never run.
    Reprocess,
}

impl RequeueMode {
    /// Stable identifier used in journal records and CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            RequeueMode::Retry => "retry",
            RequeueMode::Reprocess => "reprocess",
        }
    }
}

impl JournalRecord {
    /// The job id this record concerns.
    pub fn job(&self) -> &str {
        match self {
            JournalRecord::Started { job, .. }
            | JournalRecord::Completed { job, .. }
            | JournalRecord::Failed { job, .. }
            | JournalRecord::Dead { job, .. }
            | JournalRecord::Checkpoint { job, .. }
            | JournalRecord::Requeued { job, .. } => job,
        }
    }

    /// Encodes the record as one JSON line (no trailing newline).
    pub fn encode_line(&self) -> String {
        match self {
            JournalRecord::Started { job, attempt } => jsonl::encode_object(&[
                ("kind", JsonValue::Str("started".into())),
                ("job", JsonValue::Str(job.clone())),
                ("attempt", JsonValue::Num(u64::from(*attempt))),
            ]),
            JournalRecord::Completed {
                job,
                attempt,
                report,
            } => jsonl::encode_object(&[
                ("kind", JsonValue::Str("completed".into())),
                ("job", JsonValue::Str(job.clone())),
                ("attempt", JsonValue::Num(u64::from(*attempt))),
                ("report", JsonValue::Str(report.encode())),
            ]),
            JournalRecord::Failed {
                job,
                attempt,
                reason,
            } => jsonl::encode_object(&[
                ("kind", JsonValue::Str("failed".into())),
                ("job", JsonValue::Str(job.clone())),
                ("attempt", JsonValue::Num(u64::from(*attempt))),
                ("reason", JsonValue::Str(reason.clone())),
            ]),
            JournalRecord::Dead {
                job,
                attempts,
                reason,
            } => jsonl::encode_object(&[
                ("kind", JsonValue::Str("dead".into())),
                ("job", JsonValue::Str(job.clone())),
                ("attempts", JsonValue::Num(u64::from(*attempts))),
                ("reason", JsonValue::Str(reason.clone())),
            ]),
            JournalRecord::Checkpoint { job, path } => jsonl::encode_object(&[
                ("kind", JsonValue::Str("checkpoint".into())),
                ("job", JsonValue::Str(job.clone())),
                ("path", JsonValue::Str(path.clone())),
            ]),
            JournalRecord::Requeued { job, mode } => jsonl::encode_object(&[
                ("kind", JsonValue::Str("requeued".into())),
                ("job", JsonValue::Str(job.clone())),
                ("mode", JsonValue::Str(mode.as_str().into())),
            ]),
        }
    }

    /// Parses a line written by [`JournalRecord::encode_line`].
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Malformed`] for anything else.
    pub fn decode_line(line: &str) -> Result<Self, JournalError> {
        let malformed = |reason: String| JournalError::Malformed {
            line: line.to_string(),
            reason,
        };
        let fields = jsonl::parse_object(line).map_err(|e| malformed(format!("bad JSON: {e}")))?;
        let str_field = |key: &str| -> Result<String, JournalError> {
            jsonl::field(&fields, key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| malformed(format!("missing string field `{key}`")))
        };
        let num_field = |key: &str| -> Result<u32, JournalError> {
            jsonl::field(&fields, key)
                .and_then(JsonValue::as_u64)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| malformed(format!("missing integer field `{key}`")))
        };
        match str_field("kind")?.as_str() {
            "started" => Ok(JournalRecord::Started {
                job: str_field("job")?,
                attempt: num_field("attempt")?,
            }),
            "completed" => Ok(JournalRecord::Completed {
                job: str_field("job")?,
                attempt: num_field("attempt")?,
                report: RecoveryReport::decode(&str_field("report")?)
                    .map_err(|e| malformed(format!("bad report: {e}")))?,
            }),
            "failed" => Ok(JournalRecord::Failed {
                job: str_field("job")?,
                attempt: num_field("attempt")?,
                reason: str_field("reason")?,
            }),
            "dead" => Ok(JournalRecord::Dead {
                job: str_field("job")?,
                attempts: num_field("attempts")?,
                reason: str_field("reason")?,
            }),
            "checkpoint" => Ok(JournalRecord::Checkpoint {
                job: str_field("job")?,
                path: str_field("path")?,
            }),
            "requeued" => Ok(JournalRecord::Requeued {
                job: str_field("job")?,
                mode: match str_field("mode")?.as_str() {
                    "retry" => RequeueMode::Retry,
                    "reprocess" => RequeueMode::Reprocess,
                    other => return Err(malformed(format!("unknown requeue mode `{other}`"))),
                },
            }),
            other => Err(malformed(format!("unknown record kind `{other}`"))),
        }
    }
}

/// Errors produced while reading or writing a journal.
#[derive(Debug)]
pub enum JournalError {
    /// The journal file could not be read or written.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// A journal line did not parse.
    Malformed {
        /// The offending line.
        line: String,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, error } => {
                write!(f, "journal {}: {error}", path.display())
            }
            JournalError::Malformed { line, reason } => {
                write!(f, "malformed journal line `{line}`: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// An append-only handle on a journal file. Each record is written as one
/// line and flushed immediately (write-ahead semantics).
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    writer: BufWriter<File>,
}

impl Journal {
    /// Opens (creating if necessary) a journal for appending.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when the file cannot be opened.
    pub fn open_append(path: &Path) -> Result<Self, JournalError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|error| JournalError::Io {
                path: path.to_path_buf(),
                error,
            })?;
        Ok(Journal {
            path: path.to_path_buf(),
            writer: BufWriter::new(file),
        })
    }

    /// Appends one record and flushes it to disk.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when the write or flush fails.
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), JournalError> {
        let io = |error| JournalError::Io {
            path: self.path.clone(),
            error,
        };
        self.writer
            .write_all(record.encode_line().as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(io)
    }
}

/// Reads and decodes every record of a journal file. A missing file is an
/// empty journal (the campaign simply has not started yet).
///
/// # Errors
///
/// Returns [`JournalError`] on IO failures or malformed lines.
pub fn read_journal(path: &Path) -> Result<Vec<JournalRecord>, JournalError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(error) => {
            return Err(JournalError::Io {
                path: path.to_path_buf(),
                error,
            })
        }
    };
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(JournalRecord::decode_line)
        .collect()
}

/// The resume frontier: everything the journal knows about job progress.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JournalState {
    /// Completed jobs and their reports (job id → report).
    pub completed: BTreeMap<String, RecoveryReport>,
    /// Highest failed attempt per still-retryable job.
    pub failed_attempts: BTreeMap<String, u32>,
    /// Dead-lettered jobs and their final failure reason.
    pub dead: BTreeMap<String, String>,
    /// Total attempts made by each dead-lettered job (DLQ bookkeeping; a
    /// `retry` requeue resumes the attempt ladder from here).
    pub dead_attempts: BTreeMap<String, u32>,
    /// Highest started attempt per job (write-ahead markers).
    pub started: BTreeMap<String, u32>,
    /// Phase-checkpoint directory recorded per job (latest wins). A resume
    /// hands this back to the job runner so a killed job restarts from its
    /// last completed phase, not from scratch.
    pub checkpoints: BTreeMap<String, String>,
}

impl JournalState {
    /// Folds a record sequence into the frontier. Records for distinct jobs
    /// commute: any interleaving of per-job record sequences folds to the
    /// same state.
    pub fn replay<'a>(records: impl IntoIterator<Item = &'a JournalRecord>) -> Self {
        let mut state = JournalState::default();
        for record in records {
            match record {
                JournalRecord::Started { job, attempt } => {
                    let entry = state.started.entry(job.clone()).or_insert(0);
                    *entry = (*entry).max(*attempt);
                }
                JournalRecord::Completed { job, report, .. } => {
                    state.completed.insert(job.clone(), report.clone());
                    state.failed_attempts.remove(job);
                }
                JournalRecord::Failed { job, attempt, .. } => {
                    if !state.completed.contains_key(job) {
                        let entry = state.failed_attempts.entry(job.clone()).or_insert(0);
                        *entry = (*entry).max(*attempt);
                    }
                }
                JournalRecord::Dead {
                    job,
                    attempts,
                    reason,
                } => {
                    state.dead.insert(job.clone(), reason.clone());
                    let entry = state.dead_attempts.entry(job.clone()).or_insert(0);
                    *entry = (*entry).max(*attempts);
                    state.failed_attempts.remove(job);
                }
                JournalRecord::Checkpoint { job, path } => {
                    state.checkpoints.insert(job.clone(), path.clone());
                }
                JournalRecord::Requeued { job, mode } => {
                    // Requeueing a job that is not dead is a harmless no-op,
                    // so replay stays order-independent across distinct jobs
                    // and idempotent under duplicated requeue records.
                    if let Some(attempts) = state.dead_attempts.remove(job) {
                        state.dead.remove(job);
                        match mode {
                            RequeueMode::Retry => {
                                // The burned attempts stay on the ledger: the
                                // next run continues at attempts + 1 and thus
                                // draws a fresh attempt-derived seed.
                                let entry = state.failed_attempts.entry(job.clone()).or_insert(0);
                                *entry = (*entry).max(attempts);
                            }
                            RequeueMode::Reprocess => {
                                // Wipe the slate: attempt 1, base seed, no
                                // stale checkpoints.
                                state.failed_attempts.remove(job);
                                state.started.remove(job);
                                state.checkpoints.remove(job);
                            }
                        }
                    }
                }
            }
        }
        state
    }

    /// The attempt number the next try of `job` should use: one past the
    /// highest attempt known to have *begun* (failed or merely started).
    /// A `started` marker without a matching outcome means the process died
    /// mid-attempt — the write-ahead semantics burn that attempt, so the
    /// retry gets a fresh attempt-derived seed instead of replaying the
    /// crashed one verbatim.
    pub fn next_attempt(&self, job: &str) -> u32 {
        let failed = self.failed_attempts.get(job).copied().unwrap_or(0);
        let started = self.started.get(job).copied().unwrap_or(0);
        failed.max(started) + 1
    }

    /// The jobs of `spec` that still need to run: neither completed nor
    /// dead-lettered, in spec order.
    pub fn pending(&self, spec: &CampaignSpec) -> Vec<JobSpec> {
        spec.jobs()
            .into_iter()
            .filter(|job| {
                let id = job.id();
                !self.completed.contains_key(&id) && !self.dead.contains_key(&id)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Profile;
    use dram_model::MachineSetting;
    use dramdig::driver::{Phase, PhaseCosts};
    use dramdig::RecoveryReport;

    fn report_for(machine: u8) -> RecoveryReport {
        let setting = MachineSetting::by_number(machine).unwrap();
        RecoveryReport {
            mapping: setting.mapping().clone(),
            pool_size: 128,
            pile_count: 8,
            threshold_ns: 290,
            row_remap: None,
            validation_agreement: Some(0.97),
            phase_costs: vec![(
                Phase::Partition,
                PhaseCosts {
                    measurements: 5,
                    accesses: 10,
                    elapsed_ns: 100,
                    cache_hits: 1,
                    cache_misses: 4,
                },
            )],
            total: PhaseCosts {
                measurements: 5,
                accesses: 10,
                elapsed_ns: 100,
                cache_hits: 1,
                cache_misses: 4,
            },
        }
    }

    #[test]
    fn records_round_trip_through_jsonl() {
        let records = [
            JournalRecord::Started {
                job: "m4-s1-optimized".into(),
                attempt: 1,
            },
            JournalRecord::Completed {
                job: "m4-s1-optimized".into(),
                attempt: 2,
                report: report_for(4),
            },
            JournalRecord::Failed {
                job: "m6-s1-naive".into(),
                attempt: 1,
                reason: "validation: only 71.0% agree\nnoise?".into(),
            },
            JournalRecord::Dead {
                job: "m6-s1-naive".into(),
                attempts: 3,
                reason: "gave \"up\"".into(),
            },
            JournalRecord::Checkpoint {
                job: "m4-s1-optimized".into(),
                path: "t2/checkpoints/m4-s1-optimized".into(),
            },
            JournalRecord::Requeued {
                job: "m6-s1-naive".into(),
                mode: RequeueMode::Retry,
            },
            JournalRecord::Requeued {
                job: "m6-s1-naive".into(),
                mode: RequeueMode::Reprocess,
            },
        ];
        for record in &records {
            let line = record.encode_line();
            assert!(!line.contains('\n'), "JSONL: one line per record");
            assert_eq!(&JournalRecord::decode_line(&line).unwrap(), record);
            assert!(!record.job().is_empty());
        }
    }

    #[test]
    fn decode_rejects_malformed_records() {
        assert!(JournalRecord::decode_line("not json").is_err());
        assert!(JournalRecord::decode_line("{\"kind\":\"warp\"}").is_err());
        assert!(JournalRecord::decode_line("{\"kind\":\"started\",\"job\":\"x\"}").is_err());
        assert!(JournalRecord::decode_line(
            "{\"kind\":\"completed\",\"job\":\"x\",\"attempt\":1,\"report\":\"garbage\"}"
        )
        .is_err());
        assert!(JournalRecord::decode_line(
            "{\"kind\":\"requeued\",\"job\":\"x\",\"mode\":\"warp\"}"
        )
        .is_err());
    }

    #[test]
    fn append_then_read_round_trips_on_disk() {
        let dir = std::env::temp_dir().join(format!("dramdig-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&path);
        let records = vec![
            JournalRecord::Started {
                job: "m4-s1-fast".into(),
                attempt: 1,
            },
            JournalRecord::Completed {
                job: "m4-s1-fast".into(),
                attempt: 1,
                report: report_for(4),
            },
        ];
        {
            let mut journal = Journal::open_append(&path).unwrap();
            for r in &records {
                journal.append(r).unwrap();
            }
        }
        assert_eq!(read_journal(&path).unwrap(), records);
        // Re-opening appends instead of truncating.
        {
            let mut journal = Journal::open_append(&path).unwrap();
            journal
                .append(&JournalRecord::Failed {
                    job: "m5-s1-fast".into(),
                    attempt: 1,
                    reason: "x".into(),
                })
                .unwrap();
        }
        assert_eq!(read_journal(&path).unwrap().len(), 3);
        // A missing journal is empty, not an error.
        assert_eq!(read_journal(&dir.join("nope.jsonl")).unwrap(), vec![]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_builds_the_resume_frontier() {
        let report = report_for(4);
        let records = vec![
            JournalRecord::Started {
                job: "a".into(),
                attempt: 1,
            },
            JournalRecord::Failed {
                job: "a".into(),
                attempt: 1,
                reason: "x".into(),
            },
            JournalRecord::Started {
                job: "b".into(),
                attempt: 1,
            },
            JournalRecord::Completed {
                job: "b".into(),
                attempt: 1,
                report: report.clone(),
            },
            JournalRecord::Started {
                job: "a".into(),
                attempt: 2,
            },
            JournalRecord::Failed {
                job: "a".into(),
                attempt: 2,
                reason: "y".into(),
            },
            JournalRecord::Started {
                job: "c".into(),
                attempt: 1,
            },
            JournalRecord::Failed {
                job: "c".into(),
                attempt: 1,
                reason: "z".into(),
            },
            JournalRecord::Dead {
                job: "c".into(),
                attempts: 1,
                reason: "z".into(),
            },
            // "d" crashed mid-attempt: started but no outcome record. Its
            // phase checkpoints survive at the recorded path.
            JournalRecord::Started {
                job: "d".into(),
                attempt: 1,
            },
            JournalRecord::Checkpoint {
                job: "d".into(),
                path: "dir/checkpoints/d".into(),
            },
        ];
        let state = JournalState::replay(&records);
        assert_eq!(state.completed.len(), 1);
        assert_eq!(state.completed["b"], report);
        assert_eq!(state.next_attempt("a"), 3);
        assert_eq!(
            state.next_attempt("b"),
            2,
            "b's attempt 1 started (and completed); a retry would be attempt 2"
        );
        assert_eq!(state.dead["c"], "z");
        assert!(
            !state.failed_attempts.contains_key("c"),
            "dead clears failure counts"
        );
        assert_eq!(state.started["a"], 2);
        assert_eq!(
            state.next_attempt("d"),
            2,
            "a crashed attempt is burned: the retry gets a fresh seed"
        );
        assert_eq!(state.checkpoints["d"], "dir/checkpoints/d");
        assert!(!state.checkpoints.contains_key("a"));
    }

    #[test]
    fn requeue_retry_resumes_the_attempt_ladder_and_reprocess_wipes_it() {
        let dead = |job: &str| JournalRecord::Dead {
            job: job.into(),
            attempts: 3,
            reason: "noise".into(),
        };
        let base = vec![
            JournalRecord::Started {
                job: "a".into(),
                attempt: 3,
            },
            JournalRecord::Checkpoint {
                job: "a".into(),
                path: "dir/checkpoints/a".into(),
            },
            dead("a"),
        ];

        // retry: the job leaves the DLQ but keeps its attempt history, so
        // the next run continues at attempt 4 (fresh attempt-derived seed).
        let mut records = base.clone();
        records.push(JournalRecord::Requeued {
            job: "a".into(),
            mode: RequeueMode::Retry,
        });
        let state = JournalState::replay(&records);
        assert!(state.dead.is_empty());
        assert!(state.dead_attempts.is_empty());
        assert_eq!(state.next_attempt("a"), 4);

        // reprocess: the slate is wiped — attempt 1, base seed, no stale
        // checkpoint pointers.
        let mut records = base.clone();
        records.push(JournalRecord::Requeued {
            job: "a".into(),
            mode: RequeueMode::Reprocess,
        });
        let state = JournalState::replay(&records);
        assert!(state.dead.is_empty());
        assert_eq!(state.next_attempt("a"), 1);
        assert!(!state.checkpoints.contains_key("a"));

        // Requeueing a live (non-dead) job is a no-op.
        let records = vec![
            JournalRecord::Started {
                job: "b".into(),
                attempt: 1,
            },
            JournalRecord::Requeued {
                job: "b".into(),
                mode: RequeueMode::Reprocess,
            },
        ];
        let state = JournalState::replay(&records);
        assert_eq!(state.next_attempt("b"), 2, "requeue ignored for live jobs");

        // The dead ledger records total attempts for DLQ rendering.
        let state = JournalState::replay(&base);
        assert_eq!(state.dead_attempts["a"], 3);
    }

    #[test]
    fn pending_respects_completed_and_dead() {
        let spec = CampaignSpec::new(vec![4, 6, 7], 1, Profile::Fast);
        let records = vec![
            JournalRecord::Completed {
                job: "m4-s1-fast".into(),
                attempt: 1,
                report: report_for(4),
            },
            JournalRecord::Dead {
                job: "m6-s1-fast".into(),
                attempts: 3,
                reason: "noise".into(),
            },
        ];
        let state = JournalState::replay(&records);
        let pending = state.pending(&spec);
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].id(), "m7-s1-fast");
        // An empty journal leaves everything pending.
        assert_eq!(JournalState::default().pending(&spec).len(), 3);
    }
}
