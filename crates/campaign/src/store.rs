//! The persistent, deduplicating mapping store.
//!
//! Every completed job contributes its recovered [`AddressMapping`]. Two
//! recoveries of the *same* mapping may present different bank-function
//! lists (any basis of the same GF(2) row space induces the same bank
//! partition), so the store canonicalizes each function set to its unique
//! reduced row-echelon basis
//! ([`dram_model::gf2::Gf2Matrix::reduced_row_basis`]) before keying on it.
//! The result is a component-function database that answers fleet-level
//! questions — *which machines share bank function `(7, 14)`?*, *how many
//! distinct mappings did the campaign see?* — and whose plain-text encoding
//! is byte-identical for any insertion order, so an interrupted-and-resumed
//! campaign and an uninterrupted one produce the same artifact.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use dram_model::gf2::{self, Gf2Matrix};
use dram_model::{parse, AddressMapping, XorFunc};
use dramdig::codec::CodecError;

/// Canonical identity of a mapping: reduced bank-function basis plus the
/// row/column bit sets.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Signature {
    basis: Vec<u64>,
    row_bits: Vec<u8>,
    column_bits: Vec<u8>,
}

impl Signature {
    fn of(mapping: &AddressMapping) -> Self {
        // The bitsliced RREF (rows as lanes, one word op per eliminated
        // bit) produces the same unique reduced basis as the scalar
        // `Gf2Matrix::reduced_row_basis`, which stays the differential twin
        // (see `canonical_key_matches_scalar_rref` below).
        let masks: Vec<u64> = mapping.bank_funcs().iter().map(|f| f.mask()).collect();
        Signature {
            basis: gf2::bitslice::reduced_row_basis(&masks),
            row_bits: mapping.row_bits().to_vec(),
            column_bits: mapping.column_bits().to_vec(),
        }
    }
}

/// Where a stored mapping came from: one completed job on one machine.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Provenance {
    /// Machine label, e.g. `No.4`.
    pub machine: String,
    /// Job id, e.g. `m4-s1-optimized`.
    pub job: String,
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.machine, self.job)
    }
}

impl Provenance {
    fn decode(text: &str) -> Result<Self, CodecError> {
        let Some((machine, job)) = text.split_once(':') else {
            return Err(CodecError::whole(format!(
                "source `{text}` is not `machine:job`"
            )));
        };
        if machine.is_empty() || job.is_empty() {
            return Err(CodecError::whole(format!(
                "empty source component in `{text}`"
            )));
        }
        Ok(Provenance {
            machine: machine.to_string(),
            job: job.to_string(),
        })
    }
}

/// One distinct mapping plus every job that recovered it.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreEntry {
    /// The mapping, with its bank functions in canonical (reduced-basis)
    /// form.
    pub mapping: AddressMapping,
    /// Every job that recovered this mapping.
    pub sources: BTreeSet<Provenance>,
}

impl StoreEntry {
    /// The distinct machine labels that recovered this mapping.
    pub fn machines(&self) -> BTreeSet<&str> {
        self.sources.iter().map(|s| s.machine.as_str()).collect()
    }
}

/// The deduplicating mapping store.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MappingStore {
    entries: BTreeMap<Signature, StoreEntry>,
}

impl MappingStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MappingStore::default()
    }

    /// Records that `source` recovered `mapping`. Returns `true` when this
    /// mapping was not in the store yet (up to bank-function basis choice).
    pub fn insert(&mut self, mapping: &AddressMapping, source: Provenance) -> bool {
        let signature = Signature::of(mapping);
        match self.entries.get_mut(&signature) {
            Some(entry) => {
                entry.sources.insert(source);
                false
            }
            None => {
                let canonical_funcs: Vec<XorFunc> = signature
                    .basis
                    .iter()
                    .map(|&mask| XorFunc::from_mask(mask))
                    .collect();
                let mapping = AddressMapping::new(
                    canonical_funcs,
                    mapping.row_bits().to_vec(),
                    mapping.column_bits().to_vec(),
                )
                .expect("canonical basis spans the same space as a valid mapping");
                self.entries.insert(
                    signature,
                    StoreEntry {
                        mapping,
                        sources: BTreeSet::from([source]),
                    },
                );
                true
            }
        }
    }

    /// Merges another store into this one.
    pub fn merge(&mut self, other: MappingStore) {
        for entry in other.entries.into_values() {
            for source in entry.sources {
                self.insert(&entry.mapping, source);
            }
        }
    }

    /// Number of distinct mappings stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no mapping is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored entries, in canonical (signature) order.
    pub fn entries(&self) -> impl Iterator<Item = &StoreEntry> {
        self.entries.values()
    }

    /// The machines whose recovered mapping *uses* `func`: the function lies
    /// in the GF(2) span of the entry's bank functions. This answers
    /// "which machines share bank function X" across the whole campaign
    /// history.
    pub fn machines_sharing(&self, func: XorFunc) -> BTreeSet<&str> {
        let mut machines = BTreeSet::new();
        for entry in self.entries.values() {
            if Gf2Matrix::from_funcs(entry.mapping.bank_funcs()).spans(func.mask()) {
                machines.extend(entry.machines());
            }
        }
        machines
    }

    /// The entries whose bank-function span contains `func`.
    pub fn entries_sharing(&self, func: XorFunc) -> Vec<&StoreEntry> {
        self.entries
            .values()
            .filter(|e| Gf2Matrix::from_funcs(e.mapping.bank_funcs()).spans(func.mask()))
            .collect()
    }

    /// Serializes the store. The output is a pure function of the store
    /// *contents* — insertion order never changes a byte — so resumed and
    /// uninterrupted campaigns write identical files.
    pub fn encode(&self) -> String {
        let mut out = String::from("# dramdig mapping store\n");
        for entry in self.entries.values() {
            let (funcs, rows, cols) = parse::render_mapping(&entry.mapping);
            out.push_str("\n[mapping]\n");
            out.push_str(&format!("funcs = {funcs}\n"));
            out.push_str(&format!("rows = {rows}\n"));
            out.push_str(&format!("cols = {cols}\n"));
            let sources: Vec<String> = entry.sources.iter().map(|s| s.to_string()).collect();
            out.push_str(&format!("sources = {}\n", sources.join(", ")));
        }
        out
    }

    /// Parses a store written by [`MappingStore::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on malformed sections, keys or mappings.
    pub fn decode(text: &str) -> Result<Self, CodecError> {
        let mut store = MappingStore::new();
        let mut funcs: Option<String> = None;
        let mut rows: Option<String> = None;
        let mut cols: Option<String> = None;
        let mut sources: Vec<Provenance> = Vec::new();

        let mut flush = |funcs: &mut Option<String>,
                         rows: &mut Option<String>,
                         cols: &mut Option<String>,
                         sources: &mut Vec<Provenance>|
         -> Result<(), CodecError> {
            let started =
                funcs.is_some() || rows.is_some() || cols.is_some() || !sources.is_empty();
            if !started {
                return Ok(());
            }
            let (Some(f), Some(r), Some(c)) = (funcs.take(), rows.take(), cols.take()) else {
                return Err(CodecError::whole("incomplete [mapping] section"));
            };
            let mapping = parse::parse_mapping(&f, &r, &c)
                .map_err(|e| CodecError::whole(format!("invalid stored mapping: {e}")))?;
            if sources.is_empty() {
                return Err(CodecError::whole("a [mapping] section has no sources"));
            }
            for source in sources.drain(..) {
                store.insert(&mapping, source);
            }
            Ok(())
        };

        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[mapping]" {
                flush(&mut funcs, &mut rows, &mut cols, &mut sources)?;
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(CodecError::whole(format!(
                    "expected `key = value`, got `{line}`"
                )));
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "funcs" => funcs = Some(value.to_string()),
                "rows" => rows = Some(value.to_string()),
                "cols" => cols = Some(value.to_string()),
                "sources" => {
                    for item in value.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                        sources.push(Provenance::decode(item)?);
                    }
                }
                other => return Err(CodecError::whole(format!("unknown store key `{other}`"))),
            }
        }
        flush(&mut funcs, &mut rows, &mut cols, &mut sources)?;
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_model::MachineSetting;

    fn source(machine: u8, job: &str) -> Provenance {
        Provenance {
            machine: format!("No.{machine}"),
            job: job.to_string(),
        }
    }

    #[test]
    fn dedups_equivalent_bases_into_one_entry() {
        let no4 = MachineSetting::by_number(4).unwrap();
        // Replace (14,17) by (14,17)^(15,18): the same space, different basis.
        let variant = AddressMapping::new(
            vec![
                XorFunc::from_bits(&[13, 16]),
                XorFunc::from_bits(&[14, 15, 17, 18]),
                XorFunc::from_bits(&[15, 18]),
            ],
            no4.mapping().row_bits().to_vec(),
            no4.mapping().column_bits().to_vec(),
        )
        .unwrap();
        let mut store = MappingStore::new();
        assert!(store.insert(no4.mapping(), source(4, "m4-s1-optimized")));
        assert!(
            !store.insert(&variant, source(4, "m4-s2-optimized")),
            "same space dedups"
        );
        assert_eq!(store.len(), 1);
        let entry = store.entries().next().unwrap();
        assert_eq!(entry.sources.len(), 2);
        assert!(entry.mapping.equivalent_to(no4.mapping()));
        // Re-inserting an existing source is idempotent.
        assert!(!store.insert(no4.mapping(), source(4, "m4-s1-optimized")));
        assert_eq!(store.entries().next().unwrap().sources.len(), 2);
    }

    #[test]
    fn canonical_key_matches_scalar_rref() {
        // The store's bitsliced canonicalization must agree with the scalar
        // RREF on every Table-II mapping (the differential twin).
        for n in 1..=9u8 {
            let mapping = MachineSetting::by_number(n).unwrap().mapping().clone();
            let masks: Vec<u64> = mapping.bank_funcs().iter().map(|f| f.mask()).collect();
            assert_eq!(
                gf2::bitslice::reduced_row_basis(&masks),
                Gf2Matrix::from_funcs(mapping.bank_funcs()).reduced_row_basis(),
                "machine No.{n}"
            );
        }
    }

    #[test]
    fn distinct_mappings_stay_distinct() {
        let mut store = MappingStore::new();
        for n in [4u8, 6, 7] {
            let setting = MachineSetting::by_number(n).unwrap();
            assert!(store.insert(setting.mapping(), source(n, &format!("m{n}-s1-fast"))));
        }
        assert_eq!(store.len(), 3);
        assert!(!store.is_empty());
    }

    #[test]
    fn machines_sharing_queries_the_span() {
        let mut store = MappingStore::new();
        for n in 1..=9u8 {
            let setting = MachineSetting::by_number(n).unwrap();
            store.insert(setting.mapping(), source(n, &format!("m{n}-s1-optimized")));
        }
        // (14, 18) is a bank function of machines 2, 3 and 5 (Table II) —
        // the query answers over the span, across every stored mapping.
        let sharing = store.machines_sharing(XorFunc::from_bits(&[14, 18]));
        assert_eq!(
            sharing.iter().copied().collect::<Vec<_>>(),
            vec!["No.2", "No.3", "No.5"],
            "{sharing:?}"
        );
        // A function nobody uses.
        assert!(store
            .machines_sharing(XorFunc::from_bits(&[2, 3]))
            .is_empty());
        assert_eq!(
            store.entries_sharing(XorFunc::from_bits(&[14, 18])).len(),
            sharing.len(),
            "each sharing machine has a distinct mapping here"
        );
    }

    #[test]
    fn encode_is_insertion_order_independent_and_round_trips() {
        let settings: Vec<_> = (1..=9u8)
            .map(|n| MachineSetting::by_number(n).unwrap())
            .collect();
        let mut forward = MappingStore::new();
        for s in &settings {
            forward.insert(
                s.mapping(),
                source(s.number, &format!("m{}-s1-fast", s.number)),
            );
        }
        let mut backward = MappingStore::new();
        for s in settings.iter().rev() {
            backward.insert(
                s.mapping(),
                source(s.number, &format!("m{}-s1-fast", s.number)),
            );
        }
        assert_eq!(forward.encode(), backward.encode());
        let decoded = MappingStore::decode(&forward.encode()).unwrap();
        assert_eq!(decoded, forward);
        assert_eq!(decoded.encode(), forward.encode());
    }

    #[test]
    fn merge_unions_sources_and_entries() {
        let no4 = MachineSetting::by_number(4).unwrap();
        let no7 = MachineSetting::by_number(7).unwrap();
        let mut a = MappingStore::new();
        a.insert(no4.mapping(), source(4, "m4-s1-fast"));
        let mut b = MappingStore::new();
        b.insert(no4.mapping(), source(4, "m4-s2-fast"));
        b.insert(no7.mapping(), source(7, "m7-s1-fast"));
        a.merge(b);
        assert_eq!(a.len(), 2);
        let no4_entry = a
            .entries()
            .find(|e| e.mapping.equivalent_to(no4.mapping()))
            .unwrap();
        assert_eq!(no4_entry.sources.len(), 2);
    }

    #[test]
    fn decode_rejects_malformed_stores() {
        assert!(
            MappingStore::decode("[mapping]\nfuncs = (13, 16)\n").is_err(),
            "incomplete"
        );
        assert!(MappingStore::decode("funcs = (1)\nrows = 2\ncols = 0\nwat = 1\n").is_err());
        assert!(MappingStore::decode("garbage line\n").is_err());
        assert!(
            MappingStore::decode(
                "[mapping]\nfuncs = (13, 16), (14, 17), (15, 18)\nrows = 16~31\ncols = 0~12\nsources = broken\n"
            )
            .is_err(),
            "sources must be machine:job"
        );
        // The empty store round-trips.
        let empty = MappingStore::new();
        assert_eq!(MappingStore::decode(&empty.encode()).unwrap(), empty);
    }
}
