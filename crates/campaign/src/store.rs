//! The persistent, deduplicating mapping store — a campaign-facing view
//! over the registry's in-memory core.
//!
//! Every completed job contributes its recovered [`AddressMapping`]. Two
//! recoveries of the *same* mapping may present different bank-function
//! lists (any basis of the same GF(2) row space induces the same bank
//! partition), so the store canonicalizes each function set to its unique
//! reduced row-echelon basis before keying on it. Since PR 9 the heavy
//! lifting lives in [`registry::MemRegistry`]: content-addressed entries,
//! a function-level inverted index behind [`MappingStore::machines_sharing`]
//! (the old linear scan survives as
//! [`MappingStore::machines_sharing_scan`], the differential twin), and a
//! raw-shape memo so journal replay never re-canonicalizes a mapping it
//! has already seen. This module keeps what is campaign-specific: the
//! `store.txt` text codec, whose bytes are a pure function of the store
//! contents — an interrupted-and-resumed campaign and an uninterrupted one
//! produce the same artifact, byte for byte.

use std::collections::BTreeSet;

use dram_model::{parse, AddressMapping, XorFunc};
use dramdig::codec::CodecError;
use registry::{MemRegistry, Record};

/// Where a stored mapping came from: one completed job on one machine.
/// Re-exported from the registry crate (there it is [`registry::Source`]).
pub use registry::Source as Provenance;

/// One distinct mapping plus every job that recovered it. Re-exported
/// from the registry crate; `fingerprint` carries the content-addressed
/// identity the registry shards and indexes on.
pub use registry::Entry as StoreEntry;

/// The deduplicating mapping store.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MappingStore {
    registry: MemRegistry,
}

impl MappingStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MappingStore::default()
    }

    /// Records that `source` recovered `mapping`. Returns `true` when this
    /// mapping was not in the store yet (up to bank-function basis choice).
    pub fn insert(&mut self, mapping: &AddressMapping, source: Provenance) -> bool {
        self.registry.insert(mapping, source)
    }

    /// Merges another store into this one.
    pub fn merge(&mut self, other: MappingStore) {
        self.registry.merge(&other.registry);
    }

    /// Number of distinct mappings stored.
    pub fn len(&self) -> usize {
        self.registry.len()
    }

    /// Returns `true` when no mapping is stored.
    pub fn is_empty(&self) -> bool {
        self.registry.is_empty()
    }

    /// The stored entries, in canonical (signature) order.
    pub fn entries(&self) -> impl Iterator<Item = &StoreEntry> {
        self.registry.entries()
    }

    /// The underlying registry core, for query layers that want the
    /// costed/nearest/fingerprint APIs directly.
    pub fn registry(&self) -> &MemRegistry {
        &self.registry
    }

    /// RREF canonicalizations performed so far. Journal replay over
    /// already-stored mappings must not move this (the raw-shape memo
    /// answers instead).
    pub fn canonicalizations(&self) -> u64 {
        self.registry.canonicalizations()
    }

    /// The machines whose recovered mapping *uses* `func`: the function lies
    /// in the GF(2) span of the entry's bank functions. This answers
    /// "which machines share bank function X" across the whole campaign
    /// history — from the inverted index: only entries whose basis support
    /// covers `func`'s bits are examined.
    pub fn machines_sharing(&self, func: XorFunc) -> BTreeSet<&str> {
        self.registry.machines_sharing(func)
    }

    /// Differential twin of [`MappingStore::machines_sharing`]: the
    /// original full linear scan, kept so tests (and the bench gate) can
    /// confirm the index changes nothing but the work done.
    pub fn machines_sharing_scan(&self, func: XorFunc) -> BTreeSet<&str> {
        self.registry.machines_sharing_scan(func)
    }

    /// The entries whose bank-function span contains `func`.
    pub fn entries_sharing(&self, func: XorFunc) -> Vec<&StoreEntry> {
        self.registry.entries_sharing(func)
    }

    /// One registry record per `(mapping, source)` attribution, in
    /// canonical order — the import feed for a sharded on-disk registry.
    pub fn records(&self) -> Vec<Record> {
        let mut records = Vec::new();
        for entry in self.registry.entries() {
            for source in &entry.sources {
                records.push(Record::new(&entry.mapping, source.clone()));
            }
        }
        records
    }

    /// Serializes the store. The output is a pure function of the store
    /// *contents* — insertion order never changes a byte — so resumed and
    /// uninterrupted campaigns write identical files.
    pub fn encode(&self) -> String {
        let mut out = String::from("# dramdig mapping store\n");
        for entry in self.registry.entries() {
            let (funcs, rows, cols) = parse::render_mapping(&entry.mapping);
            out.push_str("\n[mapping]\n");
            out.push_str(&format!("funcs = {funcs}\n"));
            out.push_str(&format!("rows = {rows}\n"));
            out.push_str(&format!("cols = {cols}\n"));
            let sources: Vec<String> = entry.sources.iter().map(|s| s.to_string()).collect();
            out.push_str(&format!("sources = {}\n", sources.join(", ")));
        }
        out
    }

    /// Parses a store written by [`MappingStore::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on malformed sections, keys or mappings.
    pub fn decode(text: &str) -> Result<Self, CodecError> {
        let mut store = MappingStore::new();
        let mut funcs: Option<String> = None;
        let mut rows: Option<String> = None;
        let mut cols: Option<String> = None;
        let mut sources: Vec<Provenance> = Vec::new();

        let mut flush = |funcs: &mut Option<String>,
                         rows: &mut Option<String>,
                         cols: &mut Option<String>,
                         sources: &mut Vec<Provenance>|
         -> Result<(), CodecError> {
            let started =
                funcs.is_some() || rows.is_some() || cols.is_some() || !sources.is_empty();
            if !started {
                return Ok(());
            }
            let (Some(f), Some(r), Some(c)) = (funcs.take(), rows.take(), cols.take()) else {
                return Err(CodecError::whole("incomplete [mapping] section"));
            };
            let mapping = parse::parse_mapping(&f, &r, &c)
                .map_err(|e| CodecError::whole(format!("invalid stored mapping: {e}")))?;
            if sources.is_empty() {
                return Err(CodecError::whole("a [mapping] section has no sources"));
            }
            for source in sources.drain(..) {
                store.insert(&mapping, source);
            }
            Ok(())
        };

        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[mapping]" {
                flush(&mut funcs, &mut rows, &mut cols, &mut sources)?;
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(CodecError::whole(format!(
                    "expected `key = value`, got `{line}`"
                )));
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "funcs" => funcs = Some(value.to_string()),
                "rows" => rows = Some(value.to_string()),
                "cols" => cols = Some(value.to_string()),
                "sources" => {
                    for item in value.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                        sources.push(Provenance::parse(item).map_err(CodecError::whole)?);
                    }
                }
                other => return Err(CodecError::whole(format!("unknown store key `{other}`"))),
            }
        }
        flush(&mut funcs, &mut rows, &mut cols, &mut sources)?;
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_model::gf2::{self, Gf2Matrix};
    use dram_model::MachineSetting;

    fn source(machine: u8, job: &str) -> Provenance {
        Provenance::new(format!("No.{machine}"), job)
    }

    #[test]
    fn dedups_equivalent_bases_into_one_entry() {
        let no4 = MachineSetting::by_number(4).unwrap();
        // Replace (14,17) by (14,17)^(15,18): the same space, different basis.
        let variant = AddressMapping::new(
            vec![
                XorFunc::from_bits(&[13, 16]),
                XorFunc::from_bits(&[14, 15, 17, 18]),
                XorFunc::from_bits(&[15, 18]),
            ],
            no4.mapping().row_bits().to_vec(),
            no4.mapping().column_bits().to_vec(),
        )
        .unwrap();
        let mut store = MappingStore::new();
        assert!(store.insert(no4.mapping(), source(4, "m4-s1-optimized")));
        assert!(
            !store.insert(&variant, source(4, "m4-s2-optimized")),
            "same space dedups"
        );
        assert_eq!(store.len(), 1);
        let entry = store.entries().next().unwrap();
        assert_eq!(entry.sources.len(), 2);
        assert!(entry.mapping.equivalent_to(no4.mapping()));
        // Re-inserting an existing source is idempotent.
        assert!(!store.insert(no4.mapping(), source(4, "m4-s1-optimized")));
        assert_eq!(store.entries().next().unwrap().sources.len(), 2);
    }

    #[test]
    fn canonical_key_matches_scalar_rref() {
        // The store's bitsliced canonicalization must agree with the scalar
        // RREF on every Table-II mapping (the differential twin).
        for n in 1..=9u8 {
            let mapping = MachineSetting::by_number(n).unwrap().mapping().clone();
            let masks: Vec<u64> = mapping.bank_funcs().iter().map(|f| f.mask()).collect();
            assert_eq!(
                gf2::bitslice::reduced_row_basis(&masks),
                Gf2Matrix::from_funcs(mapping.bank_funcs()).reduced_row_basis(),
                "machine No.{n}"
            );
        }
    }

    #[test]
    fn distinct_mappings_stay_distinct() {
        let mut store = MappingStore::new();
        for n in [4u8, 6, 7] {
            let setting = MachineSetting::by_number(n).unwrap();
            assert!(store.insert(setting.mapping(), source(n, &format!("m{n}-s1-fast"))));
        }
        assert_eq!(store.len(), 3);
        assert!(!store.is_empty());
    }

    #[test]
    fn machines_sharing_queries_the_span() {
        let mut store = MappingStore::new();
        for n in 1..=9u8 {
            let setting = MachineSetting::by_number(n).unwrap();
            store.insert(setting.mapping(), source(n, &format!("m{n}-s1-optimized")));
        }
        // (14, 18) is a bank function of machines 2, 3 and 5 (Table II) —
        // the query answers over the span, across every stored mapping.
        let sharing = store.machines_sharing(XorFunc::from_bits(&[14, 18]));
        assert_eq!(
            sharing.iter().copied().collect::<Vec<_>>(),
            vec!["No.2", "No.3", "No.5"],
            "{sharing:?}"
        );
        // A function nobody uses.
        assert!(store
            .machines_sharing(XorFunc::from_bits(&[2, 3]))
            .is_empty());
        assert_eq!(
            store.entries_sharing(XorFunc::from_bits(&[14, 18])).len(),
            sharing.len(),
            "each sharing machine has a distinct mapping here"
        );
    }

    #[test]
    fn indexed_sharing_agrees_with_the_scan_twin() {
        let mut store = MappingStore::new();
        for n in 1..=9u8 {
            let setting = MachineSetting::by_number(n).unwrap();
            store.insert(setting.mapping(), source(n, &format!("m{n}-s1-optimized")));
        }
        let mut queries: Vec<XorFunc> = store
            .entries()
            .flat_map(|e| e.mapping.bank_funcs().to_vec())
            .collect();
        queries.push(XorFunc::from_bits(&[14, 18]));
        queries.push(XorFunc::from_bits(&[2, 3]));
        for func in queries {
            assert_eq!(
                store.machines_sharing(func),
                store.machines_sharing_scan(func),
                "query {func}"
            );
        }
    }

    #[test]
    fn replay_reuses_canonical_keys() {
        // Satellite: a journal replay re-presents every completed job's
        // mapping in the same raw shape; the store must answer those from
        // the memo instead of re-running RREF each time.
        let mut store = MappingStore::new();
        for n in 1..=9u8 {
            let setting = MachineSetting::by_number(n).unwrap();
            store.insert(setting.mapping(), source(n, &format!("m{n}-s1-optimized")));
        }
        let after_first = store.canonicalizations();
        // Table II has some identical raw shapes, so this is ≤ 9 — but
        // every distinct shape cost exactly one RREF.
        assert!(after_first >= store.len() as u64 && after_first <= 9);
        for _replay in 0..3 {
            for n in 1..=9u8 {
                let setting = MachineSetting::by_number(n).unwrap();
                store.insert(setting.mapping(), source(n, &format!("m{n}-s1-optimized")));
            }
        }
        assert_eq!(
            store.canonicalizations(),
            after_first,
            "replays must not recanonicalize"
        );
    }

    #[test]
    fn encode_is_insertion_order_independent_and_round_trips() {
        let settings: Vec<_> = (1..=9u8)
            .map(|n| MachineSetting::by_number(n).unwrap())
            .collect();
        let mut forward = MappingStore::new();
        for s in &settings {
            forward.insert(
                s.mapping(),
                source(s.number, &format!("m{}-s1-fast", s.number)),
            );
        }
        let mut backward = MappingStore::new();
        for s in settings.iter().rev() {
            backward.insert(
                s.mapping(),
                source(s.number, &format!("m{}-s1-fast", s.number)),
            );
        }
        assert_eq!(forward.encode(), backward.encode());
        let decoded = MappingStore::decode(&forward.encode()).unwrap();
        assert_eq!(decoded, forward);
        assert_eq!(decoded.encode(), forward.encode());
    }

    #[test]
    fn records_feed_a_registry_identically() {
        let mut store = MappingStore::new();
        for n in 1..=9u8 {
            let setting = MachineSetting::by_number(n).unwrap();
            store.insert(setting.mapping(), source(n, &format!("m{n}-s1-optimized")));
        }
        let mut rebuilt = MemRegistry::new();
        for record in store.records() {
            rebuilt.insert(&record.mapping, record.source);
        }
        assert_eq!(&rebuilt, store.registry());
    }

    #[test]
    fn merge_unions_sources_and_entries() {
        let no4 = MachineSetting::by_number(4).unwrap();
        let no7 = MachineSetting::by_number(7).unwrap();
        let mut a = MappingStore::new();
        a.insert(no4.mapping(), source(4, "m4-s1-fast"));
        let mut b = MappingStore::new();
        b.insert(no4.mapping(), source(4, "m4-s2-fast"));
        b.insert(no7.mapping(), source(7, "m7-s1-fast"));
        a.merge(b);
        assert_eq!(a.len(), 2);
        let no4_entry = a
            .entries()
            .find(|e| e.mapping.equivalent_to(no4.mapping()))
            .unwrap();
        assert_eq!(no4_entry.sources.len(), 2);
    }

    #[test]
    fn decode_rejects_malformed_stores() {
        assert!(
            MappingStore::decode("[mapping]\nfuncs = (13, 16)\n").is_err(),
            "incomplete"
        );
        assert!(MappingStore::decode("funcs = (1)\nrows = 2\ncols = 0\nwat = 1\n").is_err());
        assert!(MappingStore::decode("garbage line\n").is_err());
        assert!(
            MappingStore::decode(
                "[mapping]\nfuncs = (13, 16), (14, 17), (15, 18)\nrows = 16~31\ncols = 0~12\nsources = broken\n"
            )
            .is_err(),
            "sources must be machine:job"
        );
        // The empty store round-trips.
        let empty = MappingStore::new();
        assert_eq!(MappingStore::decode(&empty.encode()).unwrap(), empty);
    }
}
