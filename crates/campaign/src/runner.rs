//! The campaign orchestrator: a job queue fanned out over a worker pool.
//!
//! [`run_campaign`] replays the journal to find the resume frontier, feeds
//! every still-pending job into the generic [`crate::pool`] and injects the
//! campaign-specific behaviour through its hooks: each state transition is
//! journaled *before* the pool moves on (write-ahead), failed jobs are
//! retried with a fresh attempt seed up to the spec's retry budget and then
//! dead-lettered, and the mapping store is rebuilt from the journal after
//! every invocation — so the store is a pure function of the journal and an
//! interrupted campaign resumed later converges on exactly the artifacts of
//! an uninterrupted one.

use std::fmt;
use std::path::{Path, PathBuf};

use dram_model::MachineSetting;
use dram_sim::{PhysMemory, SimConfig, SimMachine};
use dramdig::driver::PhaseCosts;
use dramdig::engine::{EngineOptions, NullObserver, PipelineEngine};
use dramdig::{CheckpointStore, DomainKnowledge, DramDigConfig, DramDigError, RecoveryReport};
use mem_probe::SimProbe;

use crate::journal::{read_journal, Journal, JournalError, JournalRecord, JournalState};
use crate::pool::{self, PoolHooks, Verdict};
use crate::spec::{Ablation, CampaignSpec, JobSpec};
use crate::store::{MappingStore, Provenance};

/// Filesystem layout of one campaign: a directory holding the spec, the
/// journal and the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignPaths {
    dir: PathBuf,
}

impl CampaignPaths {
    /// A campaign living in `dir` (created on first run).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CampaignPaths { dir: dir.into() }
    }

    /// The campaign directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The persisted spec, written by `campaign run` and read by
    /// `campaign resume`.
    pub fn spec(&self) -> PathBuf {
        self.dir.join("campaign.spec")
    }

    /// The write-ahead journal.
    pub fn journal(&self) -> PathBuf {
        self.dir.join("journal.jsonl")
    }

    /// The mapping store artifact.
    pub fn store(&self) -> PathBuf {
        self.dir.join("store.txt")
    }

    /// The rendered dead-letter queue artifact (see [`crate::dlq`]).
    pub fn dlq(&self) -> PathBuf {
        self.dir.join("dlq.txt")
    }

    /// Root of the per-job phase-checkpoint directories (one subdirectory
    /// per job id when [`CampaignOptions::phase_checkpoints`] is enabled).
    pub fn checkpoints(&self) -> PathBuf {
        self.dir.join("checkpoints")
    }

    /// The phase-checkpoint directory of one job.
    pub fn job_checkpoint(&self, job: &JobSpec) -> PathBuf {
        self.checkpoints().join(job.id())
    }
}

/// Orchestration knobs that are *not* part of the campaign's identity (they
/// may differ between the original run and a resume).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignOptions {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Stop picking up new jobs once this many completions happened in this
    /// invocation (used to simulate an interruption, and by tests).
    pub max_completions: Option<usize>,
    /// Hand every job a phase-checkpoint directory (under
    /// [`CampaignPaths::checkpoints`]) and journal its path, so a job killed
    /// mid-pipeline resumes from its last completed phase instead of
    /// repaying the whole partition. Even when disabled, checkpoint paths
    /// already recorded in the journal are handed back to pending jobs.
    pub phase_checkpoints: bool,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            workers: 4,
            max_completions: None,
            phase_checkpoints: false,
        }
    }
}

impl CampaignOptions {
    /// A single-worker option set.
    pub fn serial() -> Self {
        CampaignOptions {
            workers: 1,
            ..CampaignOptions::default()
        }
    }

    /// Sets the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Caps completions for this invocation.
    #[must_use]
    pub fn with_max_completions(mut self, limit: usize) -> Self {
        self.max_completions = Some(limit);
        self
    }

    /// Enables per-job phase checkpointing.
    #[must_use]
    pub fn with_phase_checkpoints(mut self, enabled: bool) -> Self {
        self.phase_checkpoints = enabled;
        self
    }
}

/// Errors produced by the orchestrator.
#[derive(Debug)]
pub enum CampaignError {
    /// Journal IO or decode failure.
    Journal(JournalError),
    /// A campaign file (spec, store) could not be read or written.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// The spec or a persisted artifact did not decode.
    Codec(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Journal(e) => write!(f, "{e}"),
            CampaignError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            CampaignError::Codec(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<JournalError> for CampaignError {
    fn from(e: JournalError) -> Self {
        CampaignError::Journal(e)
    }
}

/// One completed job of this invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The job that ran.
    pub job: JobSpec,
    /// The attempt that succeeded (1-based).
    pub attempt: u32,
    /// The run's durable outcome.
    pub report: RecoveryReport,
}

/// What one [`run_campaign`] invocation did, plus the campaign-wide state
/// after it.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Jobs completed by *this* invocation, in completion order.
    pub completed: Vec<JobOutcome>,
    /// Jobs dead-lettered by *this* invocation.
    pub dead: Vec<(JobSpec, String)>,
    /// The journal state after this invocation (covers prior invocations
    /// too).
    pub state: JournalState,
    /// The mapping store rebuilt from the full journal and persisted to
    /// [`CampaignPaths::store`].
    pub store: MappingStore,
    /// Aggregate probe cost over every completed job in the journal, merged
    /// without double counting (each job owns its probe and cache).
    pub totals: PhaseCosts,
}

impl CampaignOutcome {
    /// Simulated per-job durations (seconds) of every completed job in the
    /// journal, in deterministic (job-id) order.
    pub fn job_durations(&self) -> Vec<f64> {
        self.state
            .completed
            .values()
            .map(RecoveryReport::elapsed_seconds)
            .collect()
    }

    /// The campaign's simulated makespan with `workers` machines measuring
    /// in parallel (see [`fleet_makespan`]).
    pub fn simulated_makespan(&self, workers: usize) -> f64 {
        fleet_makespan(&self.job_durations(), workers)
    }
}

/// The makespan of running jobs with the given simulated `durations`
/// (seconds) on `workers` parallel machines: jobs are assigned in order to
/// the earliest-free worker, exactly like the queue drain. This models fleet
/// throughput — on real deployments every worker is a *different physical
/// machine* probing its own DRAM, so the fleet speedup is genuine regardless
/// of how many cores the orchestrating host has.
pub fn fleet_makespan(durations: &[f64], workers: usize) -> f64 {
    let mut clocks = vec![0.0f64; workers.max(1)];
    for &d in durations {
        let earliest = clocks
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("clocks are finite"))
            .map(|(i, _)| i)
            .expect("at least one worker");
        clocks[earliest] += d;
    }
    clocks.into_iter().fold(0.0, f64::max)
}

/// Runs one job on the simulated Table-II machine it names, with the
/// profile's configuration. Retries perturb both the simulator seed and the
/// tool seed, so a failure under one noise stream is not replayed verbatim.
///
/// # Errors
///
/// Returns a human-readable reason string (the journal's failure payload)
/// when the machine is unknown or any pipeline phase fails.
pub fn run_job_sim(job: &JobSpec, attempt: u32) -> Result<RecoveryReport, String> {
    run_job_sim_with(job, attempt, job.profile.config())
}

/// [`run_job_sim`] with an explicit base configuration (the job's profile is
/// ignored; tests and benchmarks use this to tune budgets).
///
/// # Errors
///
/// See [`run_job_sim`].
pub fn run_job_sim_with(
    job: &JobSpec,
    attempt: u32,
    base_config: DramDigConfig,
) -> Result<RecoveryReport, String> {
    run_job_sim_checkpointed_with(job, attempt, base_config, None)
}

/// [`run_job_sim`] with phase-granular resume: the engine checkpoints every
/// completed phase into `checkpoint`, and when the directory already holds
/// artifacts (a previous attempt was killed mid-pipeline), the run continues
/// that attempt — with its recorded configuration and seed — from the last
/// phase boundary instead of repaying the earlier phases.
///
/// A genuine pipeline *failure* (as opposed to an interruption) wipes the
/// checkpoint directory: the retry must re-measure under a fresh seed rather
/// than resume artifacts that may embody the noise that broke the run.
///
/// # Errors
///
/// See [`run_job_sim`].
pub fn run_job_sim_checkpointed(
    job: &JobSpec,
    attempt: u32,
    checkpoint: Option<&Path>,
) -> Result<RecoveryReport, String> {
    run_job_sim_checkpointed_with(job, attempt, job.profile.config(), checkpoint)
}

/// [`run_job_sim_checkpointed`] with an explicit base configuration.
///
/// # Errors
///
/// See [`run_job_sim`].
pub fn run_job_sim_checkpointed_with(
    job: &JobSpec,
    attempt: u32,
    base_config: DramDigConfig,
    checkpoint: Option<&Path>,
) -> Result<RecoveryReport, String> {
    let setting = MachineSetting::by_number(job.machine)
        .ok_or_else(|| format!("unknown machine number {}", job.machine))?;
    let mut knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
    knowledge = match job.ablation {
        Some(Ablation::Specifications) => knowledge.without_specifications(),
        Some(Ablation::SystemInfo) => knowledge.without_system_info(),
        Some(Ablation::Empirical) => knowledge.without_empirical(),
        None => knowledge,
    };
    let mut config = base_config.with_seed(job.attempt_seed(attempt));
    let mut options = EngineOptions::default();
    if let Some(dir) = checkpoint {
        // A surviving checkpoint means an earlier attempt was killed
        // mid-pipeline: continue *that* attempt (its recorded configuration
        // carries the seed), so the finished report is byte-identical to
        // what the killed run would have produced.
        if let Ok(Some(stored)) = CheckpointStore::new(dir).load_config() {
            config = stored;
        }
        options = options.with_checkpoint(dir);
    }
    let machine =
        SimMachine::from_setting(&setting, SimConfig::default().with_seed(config.rng_seed));
    let mut probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
    let result =
        PipelineEngine::new(knowledge, config).run(&mut probe, &options, &mut NullObserver);
    match result {
        Ok(run) => Ok(RecoveryReport::from(&run)),
        Err(e) => {
            if let Some(dir) = checkpoint {
                if !matches!(e, DramDigError::Interrupted { .. }) {
                    let _ = std::fs::remove_dir_all(dir);
                }
            }
            Err(e.to_string())
        }
    }
}

/// One queued unit of work: the job plus the phase checkpoint directory
/// handed to the runner (if any). The attempt number travels separately
/// through the generic pool.
type QueuedJob = (JobSpec, Option<PathBuf>);

/// The campaign-specific behaviour injected into the generic worker pool:
/// write-ahead journaling of every transition, and checkpoint-directory
/// cleanup once a job's outcome is durable.
struct JournalHooks<'a> {
    journal: &'a mut Journal,
}

impl PoolHooks<QueuedJob, RecoveryReport> for JournalHooks<'_> {
    type Error = JournalError;

    fn on_dequeued(
        &mut self,
        (job, checkpoint): &QueuedJob,
        attempt: u32,
    ) -> Result<(), JournalError> {
        self.journal.append(&JournalRecord::Started {
            job: job.id(),
            attempt,
        })?;
        // Write-ahead: record where the job's phase artifacts will live
        // before the runner sees the path, so a kill at any point leaves a
        // resumable trail.
        if let Some(dir) = checkpoint {
            self.journal.append(&JournalRecord::Checkpoint {
                job: job.id(),
                path: dir.to_string_lossy().into_owned(),
            })?;
        }
        Ok(())
    }

    fn on_settled(
        &mut self,
        (job, checkpoint): &QueuedJob,
        attempt: u32,
        result: &Result<RecoveryReport, String>,
        verdict: Verdict,
    ) -> Result<(), JournalError> {
        let record = match (result, verdict) {
            (Ok(report), _) => JournalRecord::Completed {
                job: job.id(),
                attempt,
                report: report.clone(),
            },
            (Err(reason), Verdict::Dead) => JournalRecord::Dead {
                job: job.id(),
                attempts: attempt,
                reason: reason.clone(),
            },
            (Err(reason), _) => JournalRecord::Failed {
                job: job.id(),
                attempt,
                reason: reason.clone(),
            },
        };
        self.journal.append(&record)?;
        // The journal now owns the durable outcome; the phase artifacts of a
        // completed or dead job have served their purpose.
        if matches!(verdict, Verdict::Completed | Verdict::Dead) {
            if let Some(dir) = checkpoint {
                let _ = std::fs::remove_dir_all(dir);
            }
        }
        Ok(())
    }
}

/// Runs (or resumes) a campaign: drains every pending job of `spec` through
/// `run_job` on a pool of `options.workers` threads, journaling every
/// transition into `paths.journal()` and rewriting `paths.store()` from the
/// resulting journal.
///
/// `run_job` receives `(job, attempt, checkpoint_dir)`; the directory is
/// `Some` when [`CampaignOptions::phase_checkpoints`] is enabled or a prior
/// invocation journaled a checkpoint path for the job, and runners that
/// honour it (see [`run_job_sim_checkpointed`]) resume a killed job from its
/// last completed phase. The directory of a completed or dead-lettered job
/// is removed.
///
/// # Errors
///
/// Returns [`CampaignError`] on journal/store IO failures. Job failures are
/// *not* errors — they are retried and eventually dead-lettered.
pub fn run_campaign<R>(
    spec: &CampaignSpec,
    paths: &CampaignPaths,
    options: &CampaignOptions,
    run_job: R,
) -> Result<CampaignOutcome, CampaignError>
where
    R: Fn(&JobSpec, u32, Option<&Path>) -> Result<RecoveryReport, String> + Sync,
{
    run_campaign_with_metrics(spec, paths, options, None, run_job)
}

/// [`run_campaign`] with pool telemetry: when `metrics` is given, the
/// journal hooks are wrapped in [`pool::MeteredHooks`] so queue depth and
/// dequeue/completion/retry/dead-letter counters land in the registry. The
/// counters are order-independent totals, so the snapshot is deterministic
/// at any worker count.
pub fn run_campaign_with_metrics<R>(
    spec: &CampaignSpec,
    paths: &CampaignPaths,
    options: &CampaignOptions,
    metrics: Option<&mut telemetry::Registry>,
    run_job: R,
) -> Result<CampaignOutcome, CampaignError>
where
    R: Fn(&JobSpec, u32, Option<&Path>) -> Result<RecoveryReport, String> + Sync,
{
    std::fs::create_dir_all(paths.dir()).map_err(|error| CampaignError::Io {
        path: paths.dir().to_path_buf(),
        error,
    })?;
    let prior = JournalState::replay(&read_journal(&paths.journal())?);
    let queue: Vec<(QueuedJob, u32)> = prior
        .pending(spec)
        .into_iter()
        .map(|job| {
            let attempt = prior.next_attempt(&job.id());
            let checkpoint = if options.phase_checkpoints {
                Some(paths.job_checkpoint(&job))
            } else {
                // Checkpoint paths journaled by an earlier invocation keep
                // working even when this resume forgot the option.
                prior.checkpoints.get(&job.id()).map(PathBuf::from)
            };
            ((job, checkpoint), attempt)
        })
        .collect();

    let mut journal = Journal::open_append(&paths.journal())?;
    let mut hooks = JournalHooks {
        journal: &mut journal,
    };
    let pool_config = pool::PoolConfig {
        workers: options.workers,
        max_retries: spec.max_retries,
        max_completions: options.max_completions,
    };
    let worker =
        |(job, checkpoint): &QueuedJob, attempt: u32| run_job(job, attempt, checkpoint.as_deref());
    let drained = match metrics {
        Some(registry) => {
            let depth = queue.len();
            let mut metered = pool::MeteredHooks::new(hooks, registry, depth);
            pool::drain_pool(queue, &pool_config, &mut metered, worker)?
        }
        None => pool::drain_pool(queue, &pool_config, &mut hooks, worker)?,
    };
    let completed: Vec<JobOutcome> = drained
        .completed
        .into_iter()
        .map(|((job, _), attempt, report)| JobOutcome {
            job,
            attempt,
            report,
        })
        .collect();
    let dead: Vec<(JobSpec, String)> = drained
        .dead
        .into_iter()
        .map(|((job, _), reason)| (job, reason))
        .collect();

    // The store is a pure function of the journal: rebuild and persist it.
    // Write-then-rename so a kill mid-write can never leave a truncated
    // store.txt behind (the journal is the durable record either way).
    let journal_state = JournalState::replay(&read_journal(&paths.journal())?);
    let store = store_from_state(&journal_state, spec);
    let staged = paths.store().with_extension("txt.tmp");
    std::fs::write(&staged, store.encode())
        .and_then(|()| std::fs::rename(&staged, paths.store()))
        .map_err(|error| CampaignError::Io {
            path: paths.store(),
            error,
        })?;
    // The DLQ artifact is a pure function of the journal too.
    crate::dlq::write_dlq(&paths.dlq(), &journal_state)?;
    let totals = journal_state
        .completed
        .values()
        .fold(PhaseCosts::default(), |acc, r| acc.merge(r.total));

    Ok(CampaignOutcome {
        completed,
        dead,
        state: journal_state,
        store,
        totals,
    })
}

/// Rebuilds the mapping store from a journal state. Job ids found in the
/// journal are resolved against `spec` for their machine label; ids from
/// older specs fall back to the id itself.
pub fn store_from_state(state: &JournalState, spec: &CampaignSpec) -> MappingStore {
    let jobs: std::collections::BTreeMap<String, JobSpec> =
        spec.jobs().into_iter().map(|j| (j.id(), j)).collect();
    let mut store = MappingStore::new();
    for (job_id, report) in &state.completed {
        let machine = jobs
            .get(job_id)
            .map_or_else(|| job_id.clone(), JobSpec::machine_label);
        store.insert(
            &report.mapping,
            Provenance {
                machine,
                job: job_id.clone(),
            },
        );
    }
    store
}

/// A point-in-time summary of campaign progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignStatus {
    /// Jobs the spec expands to.
    pub total_jobs: usize,
    /// Completed jobs.
    pub completed: usize,
    /// Dead-lettered jobs with their final reason.
    pub dead: Vec<(String, String)>,
    /// Jobs still pending, with the attempt they would resume at.
    pub pending: Vec<(String, u32)>,
    /// Distinct mappings in the rebuilt store.
    pub distinct_mappings: usize,
}

/// Summarizes a campaign directory without running anything.
///
/// # Errors
///
/// Returns [`CampaignError`] when the journal cannot be read.
pub fn campaign_status(
    spec: &CampaignSpec,
    paths: &CampaignPaths,
) -> Result<CampaignStatus, CampaignError> {
    let state = JournalState::replay(&read_journal(&paths.journal())?);
    let store = store_from_state(&state, spec);
    Ok(CampaignStatus {
        total_jobs: spec.jobs().len(),
        completed: state.completed.len(),
        dead: state
            .dead
            .iter()
            .map(|(job, reason)| (job.clone(), reason.clone()))
            .collect(),
        pending: state
            .pending(spec)
            .iter()
            .map(|job| {
                let id = job.id();
                let attempt = state.next_attempt(&id);
                (id, attempt)
            })
            .collect(),
        distinct_mappings: store.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Profile;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_paths(tag: &str) -> CampaignPaths {
        let dir =
            std::env::temp_dir().join(format!("dramdig-campaign-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CampaignPaths::new(dir)
    }

    fn fake_report(machine: u8) -> RecoveryReport {
        let setting = MachineSetting::by_number(machine).unwrap();
        RecoveryReport {
            mapping: setting.mapping().clone(),
            pool_size: 64,
            pile_count: 8,
            threshold_ns: 290,
            row_remap: None,
            validation_agreement: None,
            phase_costs: Vec::new(),
            total: PhaseCosts {
                measurements: 10,
                accesses: 20,
                elapsed_ns: u64::from(machine) * 1_000_000_000,
                cache_hits: 3,
                cache_misses: 7,
            },
        }
    }

    #[test]
    fn drains_a_queue_and_builds_the_store() {
        let spec = CampaignSpec::new(vec![4, 7], 1, Profile::Fast);
        let paths = temp_paths("drain");
        let outcome = run_campaign(&spec, &paths, &CampaignOptions::default(), |job, _, _| {
            Ok(fake_report(job.machine))
        })
        .unwrap();
        assert_eq!(outcome.completed.len(), 2);
        assert!(outcome.dead.is_empty());
        assert_eq!(outcome.store.len(), 2);
        assert_eq!(outcome.totals.measurements, 20);
        assert_eq!(outcome.totals.cache_hits, 6);
        // Artifacts exist on disk.
        assert!(paths.journal().exists());
        assert!(paths.store().exists());
        // Re-running has nothing to do but reports the same state.
        let again = run_campaign(&spec, &paths, &CampaignOptions::default(), |_, _, _| {
            panic!("nothing should run on an already-complete campaign")
        })
        .unwrap();
        assert!(again.completed.is_empty());
        assert_eq!(again.state.completed.len(), 2);
        std::fs::remove_dir_all(paths.dir()).unwrap();
    }

    #[test]
    fn retries_then_dead_letters_and_resumes_attempt_numbering() {
        let mut spec = CampaignSpec::new(vec![4], 1, Profile::Fast);
        spec.max_retries = 2;
        let paths = temp_paths("retry");
        let calls = AtomicU32::new(0);
        // Fails attempts 1 and 2, succeeds on 3.
        let outcome = run_campaign(
            &spec,
            &paths,
            &CampaignOptions::serial(),
            |job, attempt, _| {
                calls.fetch_add(1, Ordering::SeqCst);
                if attempt < 3 {
                    Err(format!("injected noise on attempt {attempt}"))
                } else {
                    Ok(fake_report(job.machine))
                }
            },
        )
        .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(outcome.completed.len(), 1);
        assert_eq!(outcome.completed[0].attempt, 3);
        assert!(outcome.dead.is_empty());

        // A permanently failing job dead-letters after 1 + max_retries tries.
        let mut spec2 = CampaignSpec::new(vec![7], 1, Profile::Fast);
        spec2.max_retries = 1;
        let paths2 = temp_paths("dead");
        let calls2 = AtomicU32::new(0);
        let outcome2 = run_campaign(&spec2, &paths2, &CampaignOptions::serial(), |_, _, _| {
            calls2.fetch_add(1, Ordering::SeqCst);
            Err("always broken".to_string())
        })
        .unwrap();
        assert_eq!(calls2.load(Ordering::SeqCst), 2);
        assert!(outcome2.completed.is_empty());
        assert_eq!(outcome2.dead.len(), 1);
        assert_eq!(outcome2.dead[0].1, "always broken");
        // Dead jobs stay dead on resume.
        let status = campaign_status(&spec2, &paths2).unwrap();
        assert_eq!(status.dead.len(), 1);
        assert!(status.pending.is_empty());
        std::fs::remove_dir_all(paths.dir()).unwrap();
        std::fs::remove_dir_all(paths2.dir()).unwrap();
    }

    #[test]
    fn interruption_via_completion_cap_resumes_cleanly() {
        let spec = CampaignSpec::new(vec![1, 2, 3, 4], 1, Profile::Fast);
        let paths = temp_paths("interrupt");
        let first = run_campaign(
            &spec,
            &paths,
            &CampaignOptions::serial().with_max_completions(2),
            |job, _, _| Ok(fake_report(job.machine)),
        )
        .unwrap();
        // Workers may start one extra job before observing the cap; at least
        // the cap must be respected within one job per worker.
        assert!(first.completed.len() >= 2);
        assert!(first.completed.len() < 4);
        let status = campaign_status(&spec, &paths).unwrap();
        assert_eq!(status.completed + status.pending.len(), 4);

        let resumed = run_campaign(&spec, &paths, &CampaignOptions::default(), |job, _, _| {
            Ok(fake_report(job.machine))
        })
        .unwrap();
        assert_eq!(resumed.state.completed.len(), 4);
        assert_eq!(resumed.store.len(), 4);
        let final_status = campaign_status(&spec, &paths).unwrap();
        assert_eq!(final_status.completed, 4);
        assert!(final_status.pending.is_empty());
        std::fs::remove_dir_all(paths.dir()).unwrap();
    }

    #[test]
    fn parallel_workers_complete_every_job_exactly_once() {
        let spec = CampaignSpec {
            machines: vec![1, 2, 3, 4, 5, 6, 7, 8, 9],
            seeds: vec![1, 2],
            profiles: vec![Profile::Fast],
            ablations: vec![None],
            max_retries: 0,
        };
        let paths = temp_paths("parallel");
        let outcome = run_campaign(
            &spec,
            &paths,
            &CampaignOptions::default().with_workers(8),
            |job, _, _| Ok(fake_report(job.machine)),
        )
        .unwrap();
        assert_eq!(outcome.completed.len(), 18);
        let mut ids: Vec<String> = outcome.completed.iter().map(|o| o.job.id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 18, "no job ran twice");
        // Two seeds per machine dedup, and No.6 and No.9 share one mapping
        // (same DDR4 16 GiB configuration), so nine machines store eight
        // distinct mappings.
        assert_eq!(outcome.store.len(), 8);
        let shared = outcome
            .store
            .entries()
            .find(|e| e.machines().len() > 1)
            .expect("No.6 and No.9 collapse into one entry");
        assert_eq!(
            shared.machines().into_iter().collect::<Vec<_>>(),
            vec!["No.6", "No.9"]
        );
        std::fs::remove_dir_all(paths.dir()).unwrap();
    }

    #[test]
    fn fleet_makespan_models_parallel_machines() {
        let durations = [3.0, 3.0, 3.0, 3.0];
        assert_eq!(fleet_makespan(&durations, 1), 12.0);
        assert_eq!(fleet_makespan(&durations, 2), 6.0);
        assert_eq!(fleet_makespan(&durations, 4), 3.0);
        assert_eq!(fleet_makespan(&durations, 8), 3.0, "more workers than jobs");
        // Uneven jobs: the longest chain dominates.
        assert_eq!(fleet_makespan(&[5.0, 1.0, 1.0, 1.0], 2), 5.0);
        assert_eq!(fleet_makespan(&[], 4), 0.0);
        assert_eq!(fleet_makespan(&[2.0], 0), 2.0, "zero workers clamp to one");
    }

    #[test]
    fn sim_runner_runs_a_real_job_and_reports_ablation_failures() {
        let job = JobSpec {
            machine: 4,
            seed: 1,
            profile: Profile::Fast,
            ablation: None,
        };
        let report = run_job_sim(&job, 1).unwrap();
        let setting = MachineSetting::by_number(4).unwrap();
        assert!(report.mapping.equivalent_to(setting.mapping()));
        // Unknown machines and ablated system info fail with a reason.
        let bad = JobSpec {
            machine: 42,
            ..job.clone()
        };
        assert!(run_job_sim(&bad, 1)
            .unwrap_err()
            .contains("unknown machine"));
        let ablated = JobSpec {
            ablation: Some(Ablation::SystemInfo),
            ..job
        };
        assert!(run_job_sim(&ablated, 1).is_err());
    }
}
