//! The `dramdig` command-line tool.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dramdig_cli::Command::parse(&args) {
        Ok(command) => match dramdig_cli::execute(&command) {
            Ok(output) => print!("{output}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", dramdig_cli::usage());
            std::process::exit(2);
        }
    }
}
