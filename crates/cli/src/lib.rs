//! Command-line front end for the DRAMDig reproduction.
//!
//! The binary is called `dramdig` and offers one sub-command per workflow:
//!
//! ```text
//! dramdig list-machines
//! dramdig uncover  --machine 4 [--seed 7] [--ablate spec|sysinfo|empirical]
//! dramdig compare  --machine 2
//! dramdig hammer   --machine 1 [--tool dramdig|drama|truth] [--tests 5]
//! dramdig decode   --machine 6 --addr 0x3fe4c40
//! dramdig validate --funcs "(13, 16), (14, 17), (15, 18)" --rows 16~31 --cols 0~12
//! ```
//!
//! Everything runs against the simulated machines of Table II; on a real
//! machine the same library calls can be driven with
//! [`mem_probe::HwProbe`] instead (see the `hardware_probe` example).
//!
//! Argument parsing is deliberately dependency-free: [`Command::parse`]
//! understands `--flag value` pairs and returns a typed command that
//! [`execute`] turns into a plain-text report.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;
use std::fmt::Write as _;

use dram_baselines::{BaselineError, Drama, DramaConfig, Xiao};
use dram_model::{parse, MachineSetting, PhysAddr};
use dram_sim::{PhysMemory, SimConfig, SimMachine};
use dramdig::{DomainKnowledge, DramDig, DramDigConfig};
use mem_probe::SimProbe;
use rowhammer::{run_double_sided, AttackerView, HammerConfig};

/// Which knowledge group to disable in an `uncover --ablate` run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    /// Drop the DDR specification (row/column bit counts).
    Specifications,
    /// Drop the system information (total bank count).
    SystemInfo,
    /// Drop the empirical observations.
    Empirical,
}

/// Which tool's mapping to hammer with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HammerTool {
    /// The mapping DRAMDig uncovers.
    DramDig,
    /// The (partial) mapping DRAMA uncovers.
    Drama,
    /// The simulator's ground truth (upper bound).
    Truth,
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `dramdig list-machines`
    ListMachines,
    /// `dramdig uncover --machine N [--seed S] [--ablate GROUP]`
    Uncover {
        /// Table-II machine number (1–9).
        machine: u8,
        /// Simulator noise seed.
        seed: u64,
        /// Optional knowledge group to disable.
        ablate: Option<Ablation>,
    },
    /// `dramdig compare --machine N`
    Compare {
        /// Table-II machine number (1–9).
        machine: u8,
    },
    /// `dramdig hammer --machine N [--tool T] [--tests K]`
    Hammer {
        /// Table-II machine number (1–9).
        machine: u8,
        /// Whose mapping to hammer with.
        tool: HammerTool,
        /// Number of repeated tests.
        tests: u32,
    },
    /// `dramdig decode --machine N --addr A`
    Decode {
        /// Table-II machine number (1–9).
        machine: u8,
        /// Physical address to decode.
        addr: u64,
    },
    /// `dramdig validate --funcs F --rows R --cols C`
    Validate {
        /// Bank functions in paper notation.
        funcs: String,
        /// Row bits in range notation.
        rows: String,
        /// Column bits in range notation.
        cols: String,
    },
    /// `dramdig help`
    Help,
}

/// Errors produced while parsing or executing a command.
#[derive(Debug)]
pub enum CliError {
    /// The command line could not be parsed.
    Usage(String),
    /// The requested machine number does not exist.
    UnknownMachine(u8),
    /// A library call failed.
    Tool(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::UnknownMachine(n) => {
                write!(
                    f,
                    "unknown machine number {n}; expected 1..=9 (see `dramdig list-machines`)"
                )
            }
            CliError::Tool(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// The usage string printed on parse errors and by `dramdig help`.
pub fn usage() -> String {
    concat!(
        "dramdig — knowledge-assisted DRAM address mapping reverse engineering\n",
        "\n",
        "USAGE:\n",
        "  dramdig list-machines\n",
        "  dramdig uncover  --machine <1-9> [--seed <u64>] [--ablate spec|sysinfo|empirical]\n",
        "  dramdig compare  --machine <1-9>\n",
        "  dramdig hammer   --machine <1-9> [--tool dramdig|drama|truth] [--tests <n>]\n",
        "  dramdig decode   --machine <1-9> --addr <hex or decimal physical address>\n",
        "  dramdig validate --funcs \"(13, 16), ...\" --rows 16~31 --cols 0~12\n",
        "  dramdig help\n",
    )
    .to_string()
}

/// Extracts `--key value` pairs from an argument list.
fn flag_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_u64(text: &str) -> Result<u64, CliError> {
    let parsed = if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        text.parse()
    };
    parsed.map_err(|_| CliError::Usage(format!("`{text}` is not a valid number")))
}

fn required<'a>(args: &'a [String], key: &str, command: &str) -> Result<&'a str, CliError> {
    flag_value(args, key)
        .ok_or_else(|| CliError::Usage(format!("`dramdig {command}` requires {key} <value>")))
}

impl Command {
    /// Parses a command line (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] describing what is missing or malformed.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let Some(sub) = args.first() else {
            return Err(CliError::Usage("no sub-command given".into()));
        };
        let rest = &args[1..];
        match sub.as_str() {
            "list-machines" => Ok(Command::ListMachines),
            "help" | "--help" | "-h" => Ok(Command::Help),
            "uncover" => {
                let machine = parse_u64(required(rest, "--machine", "uncover")?)? as u8;
                let seed = match flag_value(rest, "--seed") {
                    Some(s) => parse_u64(s)?,
                    None => 0xD16,
                };
                let ablate = match flag_value(rest, "--ablate") {
                    None => None,
                    Some("spec") => Some(Ablation::Specifications),
                    Some("sysinfo") => Some(Ablation::SystemInfo),
                    Some("empirical") => Some(Ablation::Empirical),
                    Some(other) => {
                        return Err(CliError::Usage(format!(
                            "unknown --ablate group `{other}` (expected spec, sysinfo or empirical)"
                        )))
                    }
                };
                Ok(Command::Uncover {
                    machine,
                    seed,
                    ablate,
                })
            }
            "compare" => Ok(Command::Compare {
                machine: parse_u64(required(rest, "--machine", "compare")?)? as u8,
            }),
            "hammer" => {
                let machine = parse_u64(required(rest, "--machine", "hammer")?)? as u8;
                let tool = match flag_value(rest, "--tool") {
                    None | Some("dramdig") => HammerTool::DramDig,
                    Some("drama") => HammerTool::Drama,
                    Some("truth") => HammerTool::Truth,
                    Some(other) => {
                        return Err(CliError::Usage(format!(
                            "unknown --tool `{other}` (expected dramdig, drama or truth)"
                        )))
                    }
                };
                let tests = match flag_value(rest, "--tests") {
                    Some(t) => parse_u64(t)? as u32,
                    None => 1,
                };
                Ok(Command::Hammer {
                    machine,
                    tool,
                    tests,
                })
            }
            "decode" => Ok(Command::Decode {
                machine: parse_u64(required(rest, "--machine", "decode")?)? as u8,
                addr: parse_u64(required(rest, "--addr", "decode")?)?,
            }),
            "validate" => Ok(Command::Validate {
                funcs: required(rest, "--funcs", "validate")?.to_string(),
                rows: required(rest, "--rows", "validate")?.to_string(),
                cols: required(rest, "--cols", "validate")?.to_string(),
            }),
            other => Err(CliError::Usage(format!("unknown sub-command `{other}`"))),
        }
    }
}

fn setting_for(machine: u8) -> Result<MachineSetting, CliError> {
    MachineSetting::by_number(machine).ok_or(CliError::UnknownMachine(machine))
}

fn probe_for(setting: &MachineSetting, seed: u64) -> SimProbe {
    let machine = SimMachine::from_setting(setting, SimConfig::default().with_seed(seed));
    SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes))
}

/// Executes a parsed command and returns its textual report.
///
/// # Errors
///
/// Returns [`CliError`] when the machine number is unknown or a library call
/// fails.
pub fn execute(command: &Command) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(usage()),
        Command::ListMachines => {
            let mut out = String::new();
            writeln!(out, "Table II machine settings:").expect("write to string");
            for setting in MachineSetting::all() {
                writeln!(out, "  {setting}").expect("write to string");
            }
            Ok(out)
        }
        Command::Uncover {
            machine,
            seed,
            ablate,
        } => {
            let setting = setting_for(*machine)?;
            let mut knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
            knowledge = match ablate {
                Some(Ablation::Specifications) => knowledge.without_specifications(),
                Some(Ablation::SystemInfo) => knowledge.without_system_info(),
                Some(Ablation::Empirical) => knowledge.without_empirical(),
                None => knowledge,
            };
            let mut probe = probe_for(&setting, *seed);
            let report = DramDig::new(knowledge, DramDigConfig::default().with_seed(*seed))
                .run(&mut probe)
                .map_err(|e| CliError::Tool(e.to_string()))?;
            let mut out = String::new();
            writeln!(out, "machine        : {setting}").expect("write to string");
            writeln!(out, "{report}").expect("write to string");
            writeln!(
                out,
                "ground truth   : {} (recovered mapping {})",
                setting.mapping(),
                if report.mapping.equivalent_to(setting.mapping()) {
                    "matches"
                } else {
                    "DOES NOT match"
                }
            )
            .expect("write to string");
            Ok(out)
        }
        Command::Compare { machine } => {
            let setting = setting_for(*machine)?;
            let mut out = String::new();
            writeln!(out, "comparing tools on {setting}").expect("write to string");

            let mut probe = probe_for(&setting, 1);
            let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
            match DramDig::new(knowledge, DramDigConfig::default()).run(&mut probe) {
                Ok(r) => writeln!(
                    out,
                    "  DRAMDig    : correct={} measurements={} time={:.1}s",
                    r.mapping.equivalent_to(setting.mapping()),
                    r.total.measurements,
                    r.elapsed_seconds()
                )
                .expect("write to string"),
                Err(e) => writeln!(out, "  DRAMDig    : failed ({e})").expect("write to string"),
            }

            let mut probe = probe_for(&setting, 1);
            match Drama::new(DramaConfig::fast()).run(&mut probe, setting.system.address_bits()) {
                Ok(o) => writeln!(
                    out,
                    "  DRAMA      : bank-partition-correct={} full-mapping={} measurements={} time={:.1}s",
                    o.bank_partition_matches(setting.mapping()),
                    o.mapping.is_some(),
                    o.measurements,
                    o.elapsed_seconds()
                )
                .expect("write to string"),
                Err(e) => writeln!(out, "  DRAMA      : failed ({e})").expect("write to string"),
            }

            let mut probe = probe_for(&setting, 1);
            match Xiao::with_defaults().run(&mut probe, &setting.system) {
                Ok(o) => writeln!(
                    out,
                    "  Xiao et al.: correct={} measurements={} time={:.1}s",
                    o.matches(setting.mapping()),
                    o.measurements,
                    o.elapsed_seconds()
                )
                .expect("write to string"),
                Err(BaselineError::Stuck { reason, .. }) => {
                    writeln!(out, "  Xiao et al.: stuck ({reason})").expect("write to string")
                }
                Err(e) => {
                    writeln!(out, "  Xiao et al.: not applicable ({e})").expect("write to string")
                }
            }
            Ok(out)
        }
        Command::Hammer {
            machine,
            tool,
            tests,
        } => {
            let setting = setting_for(*machine)?;
            let view = match tool {
                HammerTool::Truth => AttackerView::from_mapping(setting.mapping()),
                HammerTool::DramDig => {
                    let mut probe = probe_for(&setting, 2);
                    let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
                    let report = DramDig::new(knowledge, DramDigConfig::default())
                        .run(&mut probe)
                        .map_err(|e| CliError::Tool(e.to_string()))?;
                    AttackerView::from_mapping(&report.mapping)
                }
                HammerTool::Drama => {
                    let mut probe = probe_for(&setting, 2);
                    let outcome = Drama::new(DramaConfig::fast())
                        .run(&mut probe, setting.system.address_bits())
                        .map_err(|e| CliError::Tool(e.to_string()))?;
                    AttackerView::new(outcome.functions, outcome.row_bits)
                }
            };
            let mut out = String::new();
            writeln!(
                out,
                "double-sided rowhammer on {} with the {:?} mapping:",
                setting.label(),
                tool
            )
            .expect("write to string");
            let mut total = 0usize;
            for test in 0..*tests {
                let mut sim = SimMachine::from_setting(
                    &setting,
                    SimConfig::fast_rowhammer().with_seed(0xCC + u64::from(test)),
                );
                let cfg = HammerConfig::timed(300 * 2_000_000, u64::from(test));
                let result = run_double_sided(&mut sim, &view, &cfg);
                total += result.flips;
                writeln!(
                    out,
                    "  test {:>2}: {:>5} flips ({} pairs, {:.0}% truly adjacent)",
                    test + 1,
                    result.flips,
                    result.pairs_attempted,
                    result.adjacency_rate() * 100.0
                )
                .expect("write to string");
            }
            writeln!(out, "  total  : {total} flips over {tests} tests").expect("write to string");
            Ok(out)
        }
        Command::Decode { machine, addr } => {
            let setting = setting_for(*machine)?;
            let mapping = setting.mapping();
            let capacity = mapping.capacity_bytes();
            if *addr >= capacity {
                return Err(CliError::Tool(format!(
                    "address {addr:#x} is beyond the {capacity:#x}-byte module"
                )));
            }
            let dram = mapping.to_dram(PhysAddr::new(*addr));
            let back = mapping
                .to_phys(dram)
                .map_err(|e| CliError::Tool(e.to_string()))?;
            Ok(format!(
                "machine {}: {:#x} -> {dram} (round-trips to {back})\n",
                setting.label(),
                addr
            ))
        }
        Command::Validate { funcs, rows, cols } => match parse::parse_mapping(funcs, rows, cols) {
            Ok(mapping) => Ok(format!(
                "valid mapping: {mapping}\n  banks: {}, rows per bank: {}, row size: {} bytes\n",
                mapping.num_banks(),
                mapping.num_rows(),
                mapping.row_size_bytes()
            )),
            Err(e) => Err(CliError::Tool(format!("invalid mapping: {e}"))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_every_sub_command() {
        assert_eq!(
            Command::parse(&args(&["list-machines"])).unwrap(),
            Command::ListMachines
        );
        assert_eq!(Command::parse(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(
            Command::parse(&args(&["uncover", "--machine", "4", "--seed", "9"])).unwrap(),
            Command::Uncover {
                machine: 4,
                seed: 9,
                ablate: None
            }
        );
        assert_eq!(
            Command::parse(&args(&["uncover", "--machine", "4", "--ablate", "spec"])).unwrap(),
            Command::Uncover {
                machine: 4,
                seed: 0xD16,
                ablate: Some(Ablation::Specifications)
            }
        );
        assert_eq!(
            Command::parse(&args(&["compare", "--machine", "2"])).unwrap(),
            Command::Compare { machine: 2 }
        );
        assert_eq!(
            Command::parse(&args(&[
                "hammer",
                "--machine",
                "1",
                "--tool",
                "drama",
                "--tests",
                "3"
            ]))
            .unwrap(),
            Command::Hammer {
                machine: 1,
                tool: HammerTool::Drama,
                tests: 3
            }
        );
        assert_eq!(
            Command::parse(&args(&["decode", "--machine", "6", "--addr", "0x1f00"])).unwrap(),
            Command::Decode {
                machine: 6,
                addr: 0x1f00
            }
        );
        assert!(matches!(
            Command::parse(&args(&[
                "validate", "--funcs", "(6)", "--rows", "1~2", "--cols", "0"
            ])),
            Ok(Command::Validate { .. })
        ));
    }

    #[test]
    fn rejects_malformed_command_lines() {
        assert!(Command::parse(&[]).is_err());
        assert!(Command::parse(&args(&["frobnicate"])).is_err());
        assert!(Command::parse(&args(&["uncover"])).is_err());
        assert!(Command::parse(&args(&["uncover", "--machine", "four"])).is_err());
        assert!(
            Command::parse(&args(&["uncover", "--machine", "4", "--ablate", "magic"])).is_err()
        );
        assert!(Command::parse(&args(&["hammer", "--machine", "1", "--tool", "hope"])).is_err());
        assert!(Command::parse(&args(&["decode", "--machine", "1"])).is_err());
    }

    #[test]
    fn list_machines_mentions_all_nine() {
        let out = execute(&Command::ListMachines).unwrap();
        for n in 1..=9 {
            assert!(out.contains(&format!("No.{n}")), "{out}");
        }
    }

    #[test]
    fn decode_round_trips_and_validates_range() {
        let out = execute(&Command::Decode {
            machine: 4,
            addr: 0x1234_5678,
        })
        .unwrap();
        assert!(out.contains("bank"));
        assert!(execute(&Command::Decode {
            machine: 4,
            addr: u64::MAX
        })
        .is_err());
        assert!(execute(&Command::Decode {
            machine: 42,
            addr: 0
        })
        .is_err());
    }

    #[test]
    fn validate_accepts_table_ii_and_rejects_garbage() {
        let ok = execute(&Command::Validate {
            funcs: "(13, 16), (14, 17), (15, 18)".into(),
            rows: "16~31".into(),
            cols: "0~12".into(),
        })
        .unwrap();
        assert!(ok.contains("valid mapping"));
        assert!(ok.contains("banks: 8"));
        assert!(execute(&Command::Validate {
            funcs: "(13, 16)".into(),
            rows: "16~31".into(),
            cols: "0~12".into(),
        })
        .is_err());
    }

    #[test]
    fn uncover_runs_on_a_small_machine() {
        let out = execute(&Command::Uncover {
            machine: 4,
            seed: 1,
            ablate: None,
        })
        .unwrap();
        assert!(out.contains("matches"));
        assert!(out.contains("recovered mapping"));
    }

    #[test]
    fn usage_mentions_every_sub_command() {
        let text = usage();
        for cmd in [
            "uncover",
            "compare",
            "hammer",
            "decode",
            "validate",
            "list-machines",
        ] {
            assert!(text.contains(cmd));
        }
    }
}
