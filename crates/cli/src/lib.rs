//! Command-line front end for the DRAMDig reproduction.
//!
//! The binary is called `dramdig` and offers one sub-command per workflow:
//!
//! ```text
//! dramdig list-machines
//! dramdig uncover  --machine 4 [--seed 7] [--ablate spec|sysinfo|empirical]
//!                  [--checkpoint dir] [--resume] [--budget 600]
//! dramdig compare  --machine 2
//! dramdig hammer   --machine 1 [--tool dramdig|drama|truth] [--tests 5]
//! dramdig decode   --machine 6 --addr 0x3fe4c40
//! dramdig validate --funcs "(13, 16), (14, 17), (15, 18)" --rows 16~31 --cols 0~12
//! dramdig eval     --grid ci [--seed 1] [--workers 4] [--out SCOREBOARD.txt]
//! dramdig campaign run    --dir t2 --machines 1-9 [--seeds 1] [--profiles optimized]
//! dramdig campaign resume --dir t2 [--workers 4]
//! dramdig campaign status --dir t2
//! dramdig campaign query  --dir t2 --func "(13, 16)"
//! ```
//!
//! Everything runs against the simulated machines of Table II; on a real
//! machine the same library calls can be driven with
//! [`mem_probe::HwProbe`] instead (see the `hardware_probe` example).
//!
//! Argument parsing is deliberately dependency-free: [`Command::parse`]
//! understands `--flag value` pairs and returns a typed command that
//! [`execute`] turns into a plain-text report.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;
use std::fmt::Write as _;

use campaign::{
    campaign_status, run_campaign_with_metrics, CampaignOptions, CampaignOutcome, CampaignPaths,
    CampaignSpec, MappingStore, Profile,
};
use dram_baselines::{BaselineError, Drama, DramaConfig, Xiao};
use dram_model::{parse, MachineSetting, PhysAddr};
use dram_sim::{PhysMemory, SimConfig, SimMachine};
use dramdig::engine::{Budget, EngineEvent, EngineOptions, Observer, PipelineEngine};
use dramdig::{
    CheckpointStore, DomainKnowledge, DramDig, DramDigConfig, DramDigError, TelemetryObserver,
};
use dramdig_bench::eval::{
    outcome_metrics, outcome_tracer, run_grid_metered, run_grid_with_observables, summary_line,
    EvalGrid, GridKind,
};
use mem_probe::{ObservableKind, SimProbe};
use rowhammer::{
    run_double_sided, AttackerView, FlipAdjacencyConfig, FlipAdjacencyObservable, HammerConfig,
};

/// Which knowledge group to disable in an `uncover --ablate` run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    /// Drop the DDR specification (row/column bit counts).
    Specifications,
    /// Drop the system information (total bank count).
    SystemInfo,
    /// Drop the empirical observations.
    Empirical,
}

/// Which tool's mapping to hammer with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HammerTool {
    /// The mapping DRAMDig uncovers.
    DramDig,
    /// The (partial) mapping DRAMA uncovers.
    Drama,
    /// The simulator's ground truth (upper bound).
    Truth,
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `dramdig list-machines`
    ListMachines,
    /// `dramdig uncover --machine N [--seed S] [--ablate GROUP]
    /// [--checkpoint DIR] [--resume] [--budget N] [--trace PATH]
    /// [--metrics PATH]`
    Uncover {
        /// Table-II machine number (1–9).
        machine: u8,
        /// Simulator noise seed.
        seed: u64,
        /// Optional knowledge group to disable.
        ablate: Option<Ablation>,
        /// Phase-checkpoint directory: completed phases are persisted here
        /// and an interrupted run can be continued with `--resume`.
        checkpoint: Option<String>,
        /// Resume from the checkpoint directory's recorded configuration
        /// instead of starting fresh.
        resume: bool,
        /// Measurement budget: stop (checkpointing, when `--checkpoint` is
        /// given) once this many pair measurements were spent.
        budget: Option<u64>,
        /// Observable channels to run with; declaring `flip-adjacency`
        /// additionally consults a rowhammer channel after the pipeline.
        observables: Vec<ObservableKind>,
        /// Optional path a Chrome-trace JSON of the run is written to.
        trace: Option<String>,
        /// Optional path a metrics snapshot of the run is written to.
        metrics: Option<String>,
    },
    /// `dramdig compare --machine N`
    Compare {
        /// Table-II machine number (1–9).
        machine: u8,
    },
    /// `dramdig hammer --machine N [--tool T] [--tests K]`
    Hammer {
        /// Table-II machine number (1–9).
        machine: u8,
        /// Whose mapping to hammer with.
        tool: HammerTool,
        /// Number of repeated tests.
        tests: u32,
    },
    /// `dramdig decode --machine N --addr A`
    Decode {
        /// Table-II machine number (1–9).
        machine: u8,
        /// Physical address to decode.
        addr: u64,
    },
    /// `dramdig validate --funcs F --rows R --cols C`
    Validate {
        /// Bank functions in paper notation.
        funcs: String,
        /// Row bits in range notation.
        rows: String,
        /// Column bits in range notation.
        cols: String,
    },
    /// `dramdig eval --grid G [--seed S] [--workers N] [--out PATH]
    /// [--history PATH] [--trace PATH] [--metrics PATH]`
    Eval {
        /// Scenario grid preset (quick, ci or full).
        grid: GridKind,
        /// Grid seed every scenario derives from.
        seed: u64,
        /// Worker threads draining the scenario × tool cells.
        workers: usize,
        /// Optional path the scoreboard artifact is written to.
        out: Option<String>,
        /// Optional longitudinal history file the run is appended to under
        /// the regression gate (same key must reproduce its line).
        history: Option<String>,
        /// Observable channels DRAMDig runs with across the grid.
        observables: Vec<ObservableKind>,
        /// Optional path a Chrome-trace JSON of the grid is written to.
        trace: Option<String>,
        /// Optional path a metrics snapshot of the grid is written to.
        metrics: Option<String>,
    },
    /// `dramdig campaign <run|resume|status|query> ...`
    Campaign(CampaignAction),
    /// `dramdig help`
    Help,
}

/// What a `dramdig campaign` invocation does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignAction {
    /// `dramdig campaign run --dir D --machines 1-9 [--seeds S] [--profiles P]
    /// [--ablations A] [--retries N] [--workers N] [--limit N] [--trace PATH]
    /// [--metrics PATH]`
    Run {
        /// Campaign directory (spec, journal and store live here).
        dir: String,
        /// The expanded campaign description.
        spec: CampaignSpec,
        /// Worker threads draining the job queue.
        workers: usize,
        /// Stop after this many completions (simulates an interruption).
        limit: Option<usize>,
        /// Optional path a Chrome-trace JSON of the campaign is written to.
        trace: Option<String>,
        /// Optional path a metrics snapshot of the campaign is written to.
        metrics: Option<String>,
    },
    /// `dramdig campaign resume --dir D [--workers N] [--limit N]`
    Resume {
        /// Campaign directory holding the persisted spec.
        dir: String,
        /// Worker threads draining the job queue.
        workers: usize,
        /// Stop after this many completions (simulates an interruption).
        limit: Option<usize>,
    },
    /// `dramdig campaign status --dir D`
    Status {
        /// Campaign directory.
        dir: String,
    },
    /// `dramdig campaign query --dir D --func "(13, 16)"`
    Query {
        /// Campaign directory.
        dir: String,
        /// Bank function in paper notation.
        func: String,
    },
}

/// Errors produced while parsing or executing a command.
#[derive(Debug)]
pub enum CliError {
    /// The command line could not be parsed.
    Usage(String),
    /// The requested machine number does not exist.
    UnknownMachine(u8),
    /// A library call failed.
    Tool(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::UnknownMachine(n) => {
                write!(
                    f,
                    "unknown machine number {n}; expected 1..=9 (see `dramdig list-machines`)"
                )
            }
            CliError::Tool(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// The usage string printed on parse errors and by `dramdig help`.
pub fn usage() -> String {
    concat!(
        "dramdig — knowledge-assisted DRAM address mapping reverse engineering\n",
        "\n",
        "USAGE:\n",
        "  dramdig list-machines\n",
        "  dramdig uncover  --machine <1-9> [--seed <u64>] [--ablate spec|sysinfo|empirical]\n",
        "                   [--checkpoint <dir>] [--resume] [--budget <measurements>]\n",
        "                   [--observables timing[,flip-adjacency]]\n",
        "                   [--trace <path>] [--metrics <path>]\n",
        "  dramdig compare  --machine <1-9>\n",
        "  dramdig hammer   --machine <1-9> [--tool dramdig|drama|truth] [--tests <n>]\n",
        "  dramdig decode   --machine <1-9> --addr <hex or decimal physical address>\n",
        "  dramdig validate --funcs \"(13, 16), ...\" --rows 16~31 --cols 0~12\n",
        "  dramdig eval     --grid quick|ci|full [--seed <u64>] [--workers <n>]\n",
        "                   [--out <path>] [--history <path>]\n",
        "                   [--observables timing[,flip-adjacency]]\n",
        "                   [--trace <path>] [--metrics <path>]\n",
        "  dramdig campaign run    --dir <dir> --machines <1-9|4,7> [--seeds <s,..>]\n",
        "                          [--profiles naive|default|fast|optimized[,..]]\n",
        "                          [--ablations none|spec|sysinfo|empirical[,..]]\n",
        "                          [--retries <n>] [--workers <n>] [--limit <n>]\n",
        "                          [--trace <path>] [--metrics <path>]\n",
        "  dramdig campaign resume --dir <dir> [--workers <n>] [--limit <n>]\n",
        "  dramdig campaign status --dir <dir>\n",
        "  dramdig campaign query  --dir <dir> --func \"(13, 16)\"\n",
        "  dramdig help\n",
    )
    .to_string()
}

/// Extracts `--key value` pairs from an argument list.
fn flag_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_u64(text: &str) -> Result<u64, CliError> {
    let parsed = if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        text.parse()
    };
    parsed.map_err(|_| CliError::Usage(format!("`{text}` is not a valid number")))
}

/// Parses the `--observables` channel list (comma-separated
/// [`ObservableKind`] names, deduplicated, order preserved). Defaults to
/// timing-only, the channel the pipeline itself runs on.
fn parse_observables(rest: &[String]) -> Result<Vec<ObservableKind>, CliError> {
    let Some(list) = flag_value(rest, "--observables") else {
        return Ok(vec![ObservableKind::ConflictTiming]);
    };
    let mut kinds = Vec::new();
    for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let kind = ObservableKind::from_name(name).ok_or_else(|| {
            let known: Vec<&str> = ObservableKind::ALL.iter().map(|k| k.as_str()).collect();
            CliError::Usage(format!(
                "unknown observable `{name}` (expected {})",
                known.join(", ")
            ))
        })?;
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
    }
    if kinds.is_empty() {
        return Err(CliError::Usage("`--observables` names no channels".into()));
    }
    Ok(kinds)
}

fn required<'a>(args: &'a [String], key: &str, command: &str) -> Result<&'a str, CliError> {
    flag_value(args, key)
        .ok_or_else(|| CliError::Usage(format!("`dramdig {command}` requires {key} <value>")))
}

/// Parses a machine list with ranges, e.g. `1-9` or `4,7` or `1,3-5`.
/// Each number goes through [`campaign::parse_machine_number`], so
/// out-of-range values are rejected instead of truncated onto a valid
/// machine.
fn parse_machine_list(text: &str) -> Result<Vec<u8>, CliError> {
    let number = |item: &str| campaign::parse_machine_number(item).map_err(CliError::Usage);
    let mut machines = Vec::new();
    for item in text.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        if let Some((lo, hi)) = item.split_once('-') {
            let lo = number(lo)?;
            let hi = number(hi)?;
            if lo > hi {
                return Err(CliError::Usage(format!("empty machine range `{item}`")));
            }
            machines.extend(lo..=hi);
        } else {
            machines.push(number(item)?);
        }
    }
    if machines.is_empty() {
        return Err(CliError::Usage(format!("`{text}` names no machines")));
    }
    Ok(machines)
}

/// Rejects anything that is not a known `--flag value` pair. A misspelled
/// dimension flag (`--profile` for `--profiles`) must fail up front, not
/// silently sweep the default dimension and persist the wrong spec.
fn reject_unknown_flags(rest: &[String], allowed: &[&str], command: &str) -> Result<(), CliError> {
    reject_unknown_flags_with_bare(rest, allowed, &[], command)
}

/// [`reject_unknown_flags`] with an extra set of `bare` flags that take no
/// value (e.g. `--resume`).
fn reject_unknown_flags_with_bare(
    rest: &[String],
    allowed: &[&str],
    bare: &[&str],
    command: &str,
) -> Result<(), CliError> {
    let mut i = 0;
    while i < rest.len() {
        let token = rest[i].as_str();
        if !token.starts_with("--") {
            return Err(CliError::Usage(format!(
                "unexpected argument `{token}` for `dramdig {command}`"
            )));
        }
        if bare.contains(&token) {
            i += 1;
            continue;
        }
        if !allowed.contains(&token) {
            let mut expected: Vec<&str> = allowed.iter().chain(bare).copied().collect();
            expected.sort_unstable();
            return Err(CliError::Usage(format!(
                "unknown flag `{token}` for `dramdig {command}` (expected {})",
                expected.join(", ")
            )));
        }
        if i + 1 >= rest.len() {
            return Err(CliError::Usage(format!("`{token}` requires a value")));
        }
        i += 2;
    }
    Ok(())
}

fn parse_campaign(rest: &[String]) -> Result<CampaignAction, CliError> {
    let Some(action) = rest.first() else {
        return Err(CliError::Usage(
            "`dramdig campaign` requires run, resume, status or query".into(),
        ));
    };
    let rest = &rest[1..];
    let workers = |rest: &[String]| -> Result<usize, CliError> {
        match flag_value(rest, "--workers") {
            Some(w) => {
                let workers = parse_u64(w)? as usize;
                if workers == 0 {
                    return Err(CliError::Usage("--workers must be at least 1".into()));
                }
                Ok(workers)
            }
            None => Ok(4),
        }
    };
    let limit = |rest: &[String]| -> Result<Option<usize>, CliError> {
        flag_value(rest, "--limit")
            .map(|l| parse_u64(l).map(|v| v as usize))
            .transpose()
    };
    match action.as_str() {
        "run" => {
            reject_unknown_flags(
                rest,
                &[
                    "--dir",
                    "--machines",
                    "--seeds",
                    "--profiles",
                    "--ablations",
                    "--retries",
                    "--workers",
                    "--limit",
                    "--trace",
                    "--metrics",
                ],
                "campaign run",
            )?;
            let dir = required(rest, "--dir", "campaign run")?.to_string();
            let machines = parse_machine_list(required(rest, "--machines", "campaign run")?)?;
            let seeds = match flag_value(rest, "--seeds") {
                Some(list) => list
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(parse_u64)
                    .collect::<Result<Vec<u64>, CliError>>()?,
                None => vec![1],
            };
            let profiles = match flag_value(rest, "--profiles") {
                Some(list) => Profile::parse_list(list).map_err(CliError::Usage)?,
                None => vec![Profile::Optimized],
            };
            let ablations = match flag_value(rest, "--ablations") {
                Some(list) => campaign::Ablation::parse_list(list).map_err(CliError::Usage)?,
                None => vec![None],
            };
            let max_retries = match flag_value(rest, "--retries") {
                Some(r) => u32::try_from(parse_u64(r)?).map_err(|_| {
                    CliError::Usage(format!("--retries {r} does not fit a 32-bit count"))
                })?,
                None => 2,
            };
            let spec = CampaignSpec {
                machines,
                seeds,
                profiles,
                ablations,
                max_retries,
            };
            if spec.seeds.is_empty() || spec.profiles.is_empty() || spec.ablations.is_empty() {
                return Err(CliError::Usage("campaign spec expands to zero jobs".into()));
            }
            Ok(CampaignAction::Run {
                dir,
                spec,
                workers: workers(rest)?,
                limit: limit(rest)?,
                trace: flag_value(rest, "--trace").map(str::to_string),
                metrics: flag_value(rest, "--metrics").map(str::to_string),
            })
        }
        "resume" => {
            reject_unknown_flags(rest, &["--dir", "--workers", "--limit"], "campaign resume")?;
            Ok(CampaignAction::Resume {
                dir: required(rest, "--dir", "campaign resume")?.to_string(),
                workers: workers(rest)?,
                limit: limit(rest)?,
            })
        }
        "status" => {
            reject_unknown_flags(rest, &["--dir"], "campaign status")?;
            Ok(CampaignAction::Status {
                dir: required(rest, "--dir", "campaign status")?.to_string(),
            })
        }
        "query" => {
            reject_unknown_flags(rest, &["--dir", "--func"], "campaign query")?;
            Ok(CampaignAction::Query {
                dir: required(rest, "--dir", "campaign query")?.to_string(),
                func: required(rest, "--func", "campaign query")?.to_string(),
            })
        }
        other => Err(CliError::Usage(format!(
            "unknown campaign action `{other}` (expected run, resume, status or query)"
        ))),
    }
}

impl Command {
    /// Parses a command line (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] describing what is missing or malformed.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let Some(sub) = args.first() else {
            return Err(CliError::Usage("no sub-command given".into()));
        };
        let rest = &args[1..];
        match sub.as_str() {
            "list-machines" => Ok(Command::ListMachines),
            "help" | "--help" | "-h" => Ok(Command::Help),
            "uncover" => {
                // A misspelled stateful flag (`--chekpoint`, `--budjet`)
                // must fail loudly: silently running without checkpoints
                // would lose all work on the next kill.
                reject_unknown_flags_with_bare(
                    rest,
                    &[
                        "--machine",
                        "--seed",
                        "--ablate",
                        "--checkpoint",
                        "--budget",
                        "--observables",
                        "--trace",
                        "--metrics",
                    ],
                    &["--resume"],
                    "uncover",
                )?;
                let machine = parse_u64(required(rest, "--machine", "uncover")?)? as u8;
                let seed = match flag_value(rest, "--seed") {
                    Some(s) => parse_u64(s)?,
                    None => 0xD16,
                };
                let ablate = match flag_value(rest, "--ablate") {
                    None => None,
                    Some("spec") => Some(Ablation::Specifications),
                    Some("sysinfo") => Some(Ablation::SystemInfo),
                    Some("empirical") => Some(Ablation::Empirical),
                    Some(other) => {
                        return Err(CliError::Usage(format!(
                            "unknown --ablate group `{other}` (expected spec, sysinfo or empirical)"
                        )))
                    }
                };
                let checkpoint = flag_value(rest, "--checkpoint").map(str::to_string);
                let resume = rest.iter().any(|a| a == "--resume");
                if resume && checkpoint.is_none() {
                    return Err(CliError::Usage(
                        "`--resume` requires `--checkpoint <dir>` naming the run to continue"
                            .into(),
                    ));
                }
                let budget = match flag_value(rest, "--budget") {
                    None => None,
                    Some(b) => {
                        let cap = parse_u64(b)?;
                        // Caught at parse time: a zero budget can only ever
                        // interrupt before calibration, which reads as a
                        // confusing mid-run failure instead of a bad flag.
                        if cap == 0 {
                            return Err(CliError::Usage(
                                "--budget must be at least 1 pair measurement \
                                 (a budget of 0 cannot run any phase)"
                                    .into(),
                            ));
                        }
                        Some(cap)
                    }
                };
                Ok(Command::Uncover {
                    machine,
                    seed,
                    ablate,
                    checkpoint,
                    resume,
                    budget,
                    observables: parse_observables(rest)?,
                    trace: flag_value(rest, "--trace").map(str::to_string),
                    metrics: flag_value(rest, "--metrics").map(str::to_string),
                })
            }
            "compare" => Ok(Command::Compare {
                machine: parse_u64(required(rest, "--machine", "compare")?)? as u8,
            }),
            "hammer" => {
                let machine = parse_u64(required(rest, "--machine", "hammer")?)? as u8;
                let tool = match flag_value(rest, "--tool") {
                    None | Some("dramdig") => HammerTool::DramDig,
                    Some("drama") => HammerTool::Drama,
                    Some("truth") => HammerTool::Truth,
                    Some(other) => {
                        return Err(CliError::Usage(format!(
                            "unknown --tool `{other}` (expected dramdig, drama or truth)"
                        )))
                    }
                };
                let tests = match flag_value(rest, "--tests") {
                    Some(t) => parse_u64(t)? as u32,
                    None => 1,
                };
                Ok(Command::Hammer {
                    machine,
                    tool,
                    tests,
                })
            }
            "decode" => Ok(Command::Decode {
                machine: parse_u64(required(rest, "--machine", "decode")?)? as u8,
                addr: parse_u64(required(rest, "--addr", "decode")?)?,
            }),
            "validate" => Ok(Command::Validate {
                funcs: required(rest, "--funcs", "validate")?.to_string(),
                rows: required(rest, "--rows", "validate")?.to_string(),
                cols: required(rest, "--cols", "validate")?.to_string(),
            }),
            "eval" => {
                reject_unknown_flags(
                    rest,
                    &[
                        "--grid",
                        "--seed",
                        "--workers",
                        "--out",
                        "--history",
                        "--observables",
                        "--trace",
                        "--metrics",
                    ],
                    "eval",
                )?;
                let grid_name = required(rest, "--grid", "eval")?;
                let grid = GridKind::from_name(grid_name).ok_or_else(|| {
                    CliError::Usage(format!(
                        "unknown --grid `{grid_name}` (expected quick, ci or full)"
                    ))
                })?;
                let seed = match flag_value(rest, "--seed") {
                    Some(s) => parse_u64(s)?,
                    None => 1,
                };
                let workers = match flag_value(rest, "--workers") {
                    Some(w) => {
                        let workers = parse_u64(w)? as usize;
                        if workers == 0 {
                            return Err(CliError::Usage("--workers must be at least 1".into()));
                        }
                        workers
                    }
                    None => 4,
                };
                Ok(Command::Eval {
                    grid,
                    seed,
                    workers,
                    out: flag_value(rest, "--out").map(str::to_string),
                    history: flag_value(rest, "--history").map(str::to_string),
                    observables: parse_observables(rest)?,
                    trace: flag_value(rest, "--trace").map(str::to_string),
                    metrics: flag_value(rest, "--metrics").map(str::to_string),
                })
            }
            "campaign" => parse_campaign(rest).map(Command::Campaign),
            other => Err(CliError::Usage(format!("unknown sub-command `{other}`"))),
        }
    }
}

fn setting_for(machine: u8) -> Result<MachineSetting, CliError> {
    MachineSetting::by_number(machine).ok_or(CliError::UnknownMachine(machine))
}

/// Live progress line for `uncover`, fed by the engine's [`Observer`]
/// events. Everything goes to stderr so stdout stays a clean report that
/// scripts (and the CI kill/resume smoke) can compare byte-for-byte.
struct ProgressLine;

impl Observer for ProgressLine {
    fn on_event(&mut self, event: &EngineEvent) {
        match event {
            EngineEvent::RunStarted { phases, resumed } if *resumed > 0 => {
                eprintln!(
                    "[dramdig] resuming: {resumed}/{phases} phases restored from checkpoints"
                );
            }
            EngineEvent::PhaseStarted { phase } => eprintln!("[dramdig] {phase} ..."),
            EngineEvent::PhaseCompleted {
                phase,
                costs,
                checkpointed,
            } => eprintln!(
                "[dramdig] {phase}: {} measurements, {:.3} s{}",
                costs.measurements,
                costs.elapsed_seconds(),
                if *checkpointed { " [checkpointed]" } else { "" }
            ),
            EngineEvent::PhaseRestored { phase, costs } => eprintln!(
                "[dramdig] {phase}: restored ({} measurements already paid)",
                costs.measurements
            ),
            EngineEvent::BudgetPressure {
                spent_measurements,
                max_measurements,
                ..
            } => eprintln!(
                "[dramdig] budget pressure: {spent_measurements}/{max_measurements} measurements"
            ),
            EngineEvent::ObservableQueried { kind, cost } => eprintln!(
                "[dramdig] observable {}: {} timing + {} hammer pairs, {:.3} s",
                kind.as_str(),
                cost.timing_pairs,
                cost.hammer_pairs,
                cost.elapsed_ns as f64 / 1e9,
            ),
            // Per-batch oracle events are opt-in debugging detail
            // (`EngineOptions::fine_events`); a line per batch would drown
            // the per-phase progress.
            EngineEvent::OracleBatch { .. } => {}
            EngineEvent::Interrupted { phase, reason } => {
                eprintln!("[dramdig] interrupted before {phase}: {reason}");
            }
            EngineEvent::RunCompleted { total } => eprintln!(
                "[dramdig] done: {} measurements, {:.3} s simulated",
                total.measurements,
                total.elapsed_seconds()
            ),
            EngineEvent::RunStarted { .. } => {}
        }
    }
}

/// Writes a run's recorded telemetry to the `--trace` / `--metrics` paths.
/// A no-op when neither flag was given (`telemetry` is `None`).
fn write_telemetry(
    telemetry: Option<TelemetryObserver>,
    trace: Option<&str>,
    metrics: Option<&str>,
) -> Result<(), CliError> {
    let Some(observer) = telemetry else {
        return Ok(());
    };
    let (tracer, registry) = observer.into_parts();
    write_trace_files(&tracer, &registry, trace, metrics)
}

/// Writes a tracer's Chrome trace and a registry's snapshot to optional
/// paths. Both exports are byte-deterministic (simulated clock only).
fn write_trace_files(
    tracer: &telemetry::Tracer,
    registry: &telemetry::Registry,
    trace: Option<&str>,
    metrics: Option<&str>,
) -> Result<(), CliError> {
    if let Some(path) = trace {
        std::fs::write(path, tracer.chrome_trace())
            .map_err(|e| CliError::Tool(format!("cannot write trace to {path}: {e}")))?;
    }
    if let Some(path) = metrics {
        std::fs::write(path, registry.snapshot())
            .map_err(|e| CliError::Tool(format!("cannot write metrics to {path}: {e}")))?;
    }
    Ok(())
}

/// Reassembles a campaign's completed jobs into a trace on a virtual serial
/// timeline. The journal state's completed map is keyed (and iterated) by
/// job id, so the span order — and the exported bytes — are independent of
/// the nondeterministic completion order of the worker pool.
fn campaign_tracer(outcome: &CampaignOutcome) -> telemetry::Tracer {
    let mut tracer = telemetry::Tracer::new();
    let run = tracer.begin_with(
        telemetry::SpanKind::Run,
        "campaign",
        &[("jobs", outcome.state.completed.len() as u64)],
    );
    for (job_id, report) in &outcome.state.completed {
        let span = tracer.begin(telemetry::SpanKind::CampaignJob, job_id);
        tracer.advance_ns(report.total.elapsed_ns);
        tracer.end_with(span, &[("measurements", report.total.measurements)]);
    }
    tracer.end_with(run, &[("measurements", outcome.totals.measurements)]);
    tracer
}

/// What `uncover --checkpoint` remembers about the run besides the pipeline
/// configuration: enough to refuse a `--resume` against the wrong machine
/// or ablation.
fn uncover_meta(machine: u8, ablate: Option<Ablation>) -> String {
    let ablate = match ablate {
        None => "none",
        Some(Ablation::Specifications) => "spec",
        Some(Ablation::SystemInfo) => "sysinfo",
        Some(Ablation::Empirical) => "empirical",
    };
    format!("machine = {machine}\nablate = {ablate}\n")
}

fn probe_for(setting: &MachineSetting, seed: u64) -> SimProbe {
    let machine = SimMachine::from_setting(setting, SimConfig::default().with_seed(seed));
    SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes))
}

/// Executes a parsed command and returns its textual report.
///
/// # Errors
///
/// Returns [`CliError`] when the machine number is unknown or a library call
/// fails.
pub fn execute(command: &Command) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(usage()),
        Command::ListMachines => {
            let mut out = String::new();
            writeln!(out, "Table II machine settings:").expect("write to string");
            for setting in MachineSetting::all() {
                writeln!(out, "  {setting}").expect("write to string");
            }
            Ok(out)
        }
        Command::Uncover {
            machine,
            seed,
            ablate,
            checkpoint,
            resume,
            budget,
            observables,
            trace,
            metrics,
        } => {
            let setting = setting_for(*machine)?;
            let mut config = DramDigConfig::default().with_seed(*seed);
            let meta = uncover_meta(*machine, *ablate);
            if let Some(dir) = checkpoint {
                let store = CheckpointStore::new(dir);
                let meta_path = store.dir().join("uncover.meta");
                match std::fs::read_to_string(&meta_path) {
                    Ok(stored_meta) => {
                        if stored_meta != meta {
                            return Err(CliError::Tool(format!(
                                "{dir} holds a checkpoint for a different run \
                                 (recorded: {}; requested: {})",
                                stored_meta.replace('\n', " "),
                                meta.replace('\n', " "),
                            )));
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                        if *resume {
                            return Err(CliError::Tool(format!(
                                "{dir} holds no checkpoint to resume; run without --resume first"
                            )));
                        }
                        store.save_sidecar("uncover.meta", &meta).map_err(|e| {
                            CliError::Tool(format!("cannot prepare checkpoint dir {dir}: {e}"))
                        })?;
                    }
                    Err(e) => {
                        return Err(CliError::Tool(format!(
                            "cannot read {}: {e}",
                            meta_path.display()
                        )))
                    }
                }
                if *resume {
                    // Continue exactly the recorded run: its configuration
                    // (seed included) governs both the tool and the
                    // simulated machine.
                    config = store
                        .load_config()
                        .map_err(|e| CliError::Tool(e.to_string()))?
                        .ok_or_else(|| {
                            CliError::Tool(format!(
                                "{dir} holds no recorded configuration to resume"
                            ))
                        })?;
                }
            }
            let mut knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch))
                .with_observables(observables.clone());
            knowledge = match ablate {
                Some(Ablation::Specifications) => knowledge.without_specifications(),
                Some(Ablation::SystemInfo) => knowledge.without_system_info(),
                Some(Ablation::Empirical) => knowledge.without_empirical(),
                None => knowledge,
            };
            let mut options = EngineOptions::default();
            if let Some(dir) = checkpoint {
                options = options.with_checkpoint(dir);
            }
            if let Some(cap) = budget {
                options = options.with_budget(Budget::measurements(*cap));
            }
            let telemetry_on = trace.is_some() || metrics.is_some();
            if telemetry_on {
                // Per-batch oracle events only exist when someone records
                // them; they cost nothing otherwise.
                options = options.with_fine_events(true);
            }
            let mut probe = probe_for(&setting, config.rng_seed);
            let hammer_seed = config.rng_seed ^ 0xF11A;
            let engine = PipelineEngine::new(knowledge, config);
            let mut progress = ProgressLine;
            let mut telemetry = telemetry_on.then(TelemetryObserver::new);
            // Tee the event stream: the progress line narrates to stderr
            // while the telemetry observer (when requested) records spans.
            let mut observer = |event: &EngineEvent| {
                progress.on_event(event);
                if let Some(recorder) = telemetry.as_mut() {
                    recorder.on_event(event);
                }
            };
            let run_result = if observables.contains(&ObservableKind::FlipAdjacency) {
                // The flip channel hammers its own simulated module (the
                // hammer-friendly noise profile, seeded from the run), so
                // the timing probe's measurement stream stays untouched.
                let mut flip = FlipAdjacencyObservable::new(
                    SimMachine::from_setting(
                        &setting,
                        SimConfig::fast_rowhammer().with_seed(hammer_seed),
                    ),
                    FlipAdjacencyConfig::default(),
                );
                engine.run_with_observables(&mut probe, &options, &mut observer, &mut [&mut flip])
            } else {
                engine.run(&mut probe, &options, &mut observer)
            };
            // Written before the result is inspected: an interrupted run's
            // trace (a byte-prefix of the full run's) is evidence too.
            write_telemetry(telemetry, trace.as_deref(), metrics.as_deref())?;
            let report = match run_result {
                Ok(report) => report,
                Err(DramDigError::Interrupted { phase, reason }) if checkpoint.is_some() => {
                    let dir = checkpoint.as_deref().unwrap_or_default();
                    // The suggested command must reproduce this run exactly,
                    // ablation included, or the uncover.meta guard refuses it.
                    let ablate_flag = match ablate {
                        None => String::new(),
                        Some(Ablation::Specifications) => " --ablate spec".into(),
                        Some(Ablation::SystemInfo) => " --ablate sysinfo".into(),
                        Some(Ablation::Empirical) => " --ablate empirical".into(),
                    };
                    let mut out = String::new();
                    writeln!(out, "machine        : {setting}").expect("write to string");
                    writeln!(out, "interrupted before {phase}: {reason}").expect("write");
                    writeln!(
                        out,
                        "checkpoints saved in {dir}; continue with:\n  dramdig uncover --machine {machine}{ablate_flag} --checkpoint {dir} --resume"
                    )
                    .expect("write to string");
                    return Ok(out);
                }
                Err(e) => return Err(CliError::Tool(e.to_string())),
            };
            let mut out = String::new();
            writeln!(out, "machine        : {setting}").expect("write to string");
            writeln!(out, "{report}").expect("write to string");
            writeln!(
                out,
                "ground truth   : {} (recovered mapping {})",
                setting.mapping(),
                if report.mapping.equivalent_to(setting.mapping()) {
                    "matches"
                } else {
                    "DOES NOT match"
                }
            )
            .expect("write to string");
            Ok(out)
        }
        Command::Compare { machine } => {
            let setting = setting_for(*machine)?;
            let mut out = String::new();
            writeln!(out, "comparing tools on {setting}").expect("write to string");

            let mut probe = probe_for(&setting, 1);
            let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
            match DramDig::new(knowledge, DramDigConfig::default()).run(&mut probe) {
                Ok(r) => writeln!(
                    out,
                    "  DRAMDig    : correct={} measurements={} time={:.1}s",
                    r.mapping.equivalent_to(setting.mapping()),
                    r.total.measurements,
                    r.elapsed_seconds()
                )
                .expect("write to string"),
                Err(e) => writeln!(out, "  DRAMDig    : failed ({e})").expect("write to string"),
            }

            let mut probe = probe_for(&setting, 1);
            match Drama::new(DramaConfig::fast()).run(&mut probe, setting.system.address_bits()) {
                Ok(o) => writeln!(
                    out,
                    "  DRAMA      : bank-partition-correct={} full-mapping={} measurements={} time={:.1}s",
                    o.bank_partition_matches(setting.mapping()),
                    o.mapping.is_some(),
                    o.measurements,
                    o.elapsed_seconds()
                )
                .expect("write to string"),
                Err(e) => writeln!(out, "  DRAMA      : failed ({e})").expect("write to string"),
            }

            let mut probe = probe_for(&setting, 1);
            match Xiao::with_defaults().run(&mut probe, &setting.system) {
                Ok(o) => writeln!(
                    out,
                    "  Xiao et al.: correct={} measurements={} time={:.1}s",
                    o.matches(setting.mapping()),
                    o.measurements,
                    o.elapsed_seconds()
                )
                .expect("write to string"),
                Err(BaselineError::Stuck { reason, .. }) => {
                    writeln!(out, "  Xiao et al.: stuck ({reason})").expect("write to string")
                }
                Err(e) => {
                    writeln!(out, "  Xiao et al.: not applicable ({e})").expect("write to string")
                }
            }
            Ok(out)
        }
        Command::Hammer {
            machine,
            tool,
            tests,
        } => {
            let setting = setting_for(*machine)?;
            let view = match tool {
                HammerTool::Truth => AttackerView::from_mapping(setting.mapping()),
                HammerTool::DramDig => {
                    let mut probe = probe_for(&setting, 2);
                    let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
                    let report = DramDig::new(knowledge, DramDigConfig::default())
                        .run(&mut probe)
                        .map_err(|e| CliError::Tool(e.to_string()))?;
                    AttackerView::from_mapping(&report.mapping)
                }
                HammerTool::Drama => {
                    let mut probe = probe_for(&setting, 2);
                    let outcome = Drama::new(DramaConfig::fast())
                        .run(&mut probe, setting.system.address_bits())
                        .map_err(|e| CliError::Tool(e.to_string()))?;
                    AttackerView::new(outcome.functions, outcome.row_bits)
                }
            };
            let mut out = String::new();
            writeln!(
                out,
                "double-sided rowhammer on {} with the {:?} mapping:",
                setting.label(),
                tool
            )
            .expect("write to string");
            let mut total = 0usize;
            for test in 0..*tests {
                let mut sim = SimMachine::from_setting(
                    &setting,
                    SimConfig::fast_rowhammer().with_seed(0xCC + u64::from(test)),
                );
                let cfg = HammerConfig::timed(300 * 2_000_000, u64::from(test));
                let result = run_double_sided(&mut sim, &view, &cfg);
                total += result.flips;
                writeln!(
                    out,
                    "  test {:>2}: {:>5} flips ({} pairs, {:.0}% truly adjacent)",
                    test + 1,
                    result.flips,
                    result.pairs_attempted,
                    result.adjacency_rate() * 100.0
                )
                .expect("write to string");
            }
            writeln!(out, "  total  : {total} flips over {tests} tests").expect("write to string");
            Ok(out)
        }
        Command::Decode { machine, addr } => {
            let setting = setting_for(*machine)?;
            let mapping = setting.mapping();
            let capacity = mapping.capacity_bytes();
            if *addr >= capacity {
                return Err(CliError::Tool(format!(
                    "address {addr:#x} is beyond the {capacity:#x}-byte module"
                )));
            }
            let dram = mapping.to_dram(PhysAddr::new(*addr));
            let back = mapping
                .to_phys(dram)
                .map_err(|e| CliError::Tool(e.to_string()))?;
            Ok(format!(
                "machine {}: {:#x} -> {dram} (round-trips to {back})\n",
                setting.label(),
                addr
            ))
        }
        Command::Eval {
            grid,
            seed,
            workers,
            out,
            history,
            observables,
            trace,
            metrics,
        } => {
            let expanded = EvalGrid::new(*grid, *seed);
            let mut pool_metrics = telemetry::Registry::new();
            let outcome = if metrics.is_some() {
                run_grid_metered(&expanded, *workers, observables, &mut pool_metrics)
            } else {
                run_grid_with_observables(&expanded, *workers, observables)
            };
            let scoreboard = outcome.render_scoreboard();
            // The artifacts are written even when the gate fails below — a
            // failing CI run must still upload the evidence.
            if let Some(path) = out {
                std::fs::write(path, &scoreboard).map_err(|e| {
                    CliError::Tool(format!("cannot write scoreboard to {path}: {e}"))
                })?;
            }
            if trace.is_some() || metrics.is_some() {
                let tracer = outcome_tracer(&outcome);
                let mut registry = outcome_metrics(&outcome);
                registry.merge(&pool_metrics);
                write_trace_files(&tracer, &registry, trace.as_deref(), metrics.as_deref())?;
            }
            // Simulated time, not wall time: the line is a pure function of
            // the outcome, so same-seed runs print identical bytes.
            eprintln!("{}", summary_line(&outcome));
            let gate = outcome.gate();
            if !gate.passed() {
                return Err(CliError::Tool(format!(
                    "scenario-matrix gate FAILED:\n  {}",
                    gate.failures.join("\n  ")
                )));
            }
            // Only passing boards enter the longitudinal history; a key
            // recorded before must reproduce its line byte-for-byte or the
            // run fails as a scoreboard regression.
            if let Some(path) = history {
                let existing = match std::fs::read_to_string(path) {
                    Ok(contents) => contents,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
                    Err(e) => {
                        return Err(CliError::Tool(format!("cannot read history {path}: {e}")))
                    }
                };
                let line = dramdig_bench::eval::history_line(&outcome);
                match dramdig_bench::eval::append_history(&existing, &line) {
                    Ok(Some(updated)) => {
                        std::fs::write(path, updated).map_err(|e| {
                            CliError::Tool(format!("cannot write history {path}: {e}"))
                        })?;
                        eprintln!("[dramdig] history: recorded new run in {path}");
                    }
                    Ok(None) => {
                        eprintln!("[dramdig] history: run already recorded in {path}, unchanged");
                    }
                    Err(drift) => {
                        return Err(CliError::Tool(format!("scoreboard {drift}")));
                    }
                }
            }
            Ok(scoreboard)
        }
        Command::Campaign(action) => execute_campaign(action),
        Command::Validate { funcs, rows, cols } => match parse::parse_mapping(funcs, rows, cols) {
            Ok(mapping) => Ok(format!(
                "valid mapping: {mapping}\n  banks: {}, rows per bank: {}, row size: {} bytes\n",
                mapping.num_banks(),
                mapping.num_rows(),
                mapping.row_size_bytes()
            )),
            Err(e) => Err(CliError::Tool(format!("invalid mapping: {e}"))),
        },
    }
}

fn read_campaign_spec(paths: &CampaignPaths) -> Result<CampaignSpec, CliError> {
    let text = std::fs::read_to_string(paths.spec()).map_err(|e| {
        CliError::Tool(format!(
            "cannot read {} ({e}); was this campaign started with `campaign run`?",
            paths.spec().display()
        ))
    })?;
    CampaignSpec::decode(&text).map_err(|e| CliError::Tool(format!("corrupt campaign spec: {e}")))
}

fn drive_campaign(
    dir: &str,
    spec: &CampaignSpec,
    workers: usize,
    limit: Option<usize>,
    trace: Option<&str>,
    metrics: Option<&str>,
) -> Result<String, CliError> {
    let paths = CampaignPaths::new(dir);
    // Phase checkpoints are always on for CLI campaigns: a worker killed
    // mid-pipeline resumes its job from the last phase boundary instead of
    // repaying the partition.
    let mut options = CampaignOptions::default()
        .with_workers(workers)
        .with_phase_checkpoints(true);
    if let Some(limit) = limit {
        options = options.with_max_completions(limit);
    }
    let mut pool_metrics = telemetry::Registry::new();
    let outcome = run_campaign_with_metrics(
        spec,
        &paths,
        &options,
        metrics.is_some().then_some(&mut pool_metrics),
        campaign::run_job_sim_checkpointed,
    )
    .map_err(|e| CliError::Tool(e.to_string()))?;
    if trace.is_some() || metrics.is_some() {
        write_trace_files(&campaign_tracer(&outcome), &pool_metrics, trace, metrics)?;
    }

    let mut out = String::new();
    let total = spec.jobs().len();
    writeln!(
        out,
        "campaign {dir}: {}/{total} jobs completed ({} this invocation, {} dead-lettered)",
        outcome.state.completed.len(),
        outcome.completed.len(),
        outcome.state.dead.len(),
    )
    .expect("write to string");
    for done in &outcome.completed {
        writeln!(
            out,
            "  {} (attempt {}): {}",
            done.job.id(),
            done.attempt,
            done.report.mapping
        )
        .expect("write to string");
    }
    for (job, reason) in &outcome.dead {
        writeln!(out, "  DEAD {}: {reason}", job.id()).expect("write to string");
    }
    let pending = outcome.state.pending(spec).len();
    if pending > 0 {
        writeln!(
            out,
            "  {pending} jobs still pending; continue with `dramdig campaign resume --dir {dir}`"
        )
        .expect("write to string");
    }
    writeln!(
        out,
        "store: {} distinct mappings ({})",
        outcome.store.len(),
        paths.store().display()
    )
    .expect("write to string");
    writeln!(
        out,
        "totals: {} measurements, {:.3} s simulated; fleet makespan {:.3} s at 1 machine, {:.3} s at {} machines",
        outcome.totals.measurements,
        outcome.totals.elapsed_seconds(),
        outcome.simulated_makespan(1),
        outcome.simulated_makespan(workers),
        workers,
    )
    .expect("write to string");
    Ok(out)
}

fn execute_campaign(action: &CampaignAction) -> Result<String, CliError> {
    match action {
        CampaignAction::Run {
            dir,
            spec,
            workers,
            limit,
            trace,
            metrics,
        } => {
            let paths = CampaignPaths::new(dir);
            if paths.spec().exists() {
                let existing = read_campaign_spec(&paths)?;
                if &existing != spec {
                    return Err(CliError::Tool(format!(
                        "{} already holds a different campaign; resume it or pick a new --dir",
                        dir
                    )));
                }
            } else {
                std::fs::create_dir_all(paths.dir())
                    .and_then(|()| std::fs::write(paths.spec(), spec.encode()))
                    .map_err(|e| {
                        CliError::Tool(format!("cannot persist campaign spec in {dir}: {e}"))
                    })?;
            }
            drive_campaign(
                dir,
                spec,
                *workers,
                *limit,
                trace.as_deref(),
                metrics.as_deref(),
            )
        }
        CampaignAction::Resume {
            dir,
            workers,
            limit,
        } => {
            let spec = read_campaign_spec(&CampaignPaths::new(dir))?;
            drive_campaign(dir, &spec, *workers, *limit, None, None)
        }
        CampaignAction::Status { dir } => {
            let paths = CampaignPaths::new(dir);
            let spec = read_campaign_spec(&paths)?;
            let status =
                campaign_status(&spec, &paths).map_err(|e| CliError::Tool(e.to_string()))?;
            let mut out = String::new();
            writeln!(
                out,
                "campaign {dir}: {}/{} completed, {} dead, {} pending, {} distinct mappings",
                status.completed,
                status.total_jobs,
                status.dead.len(),
                status.pending.len(),
                status.distinct_mappings,
            )
            .expect("write to string");
            for (job, attempt) in &status.pending {
                writeln!(out, "  pending {job} (next attempt {attempt})").expect("write to string");
            }
            for (job, reason) in &status.dead {
                writeln!(out, "  DEAD {job}: {reason}").expect("write to string");
            }
            Ok(out)
        }
        CampaignAction::Query { dir, func } => {
            let paths = CampaignPaths::new(dir);
            let funcs = parse::parse_functions(func)
                .map_err(|e| CliError::Tool(format!("invalid --func: {e}")))?;
            let [func] = funcs.as_slice() else {
                return Err(CliError::Tool(
                    "--func expects exactly one bank function, e.g. \"(13, 16)\"".into(),
                ));
            };
            // The journal is the durable record of truth: rebuild the store
            // from it (exactly what `status` counts), so a kill between a
            // journaled completion and the store rewrite never makes the
            // two commands disagree. Only when the journal cannot be
            // replayed does a persisted store.txt answer instead.
            let rebuilt = read_campaign_spec(&paths).and_then(|spec| {
                let records = campaign::read_journal(&paths.journal())
                    .map_err(|e| CliError::Tool(e.to_string()))?;
                Ok(campaign::store_from_state(
                    &campaign::JournalState::replay(&records),
                    &spec,
                ))
            });
            let store = match rebuilt {
                Ok(store) => store,
                Err(journal_error) => std::fs::read_to_string(paths.store())
                    .ok()
                    .and_then(|text| MappingStore::decode(&text).ok())
                    .ok_or(journal_error)?,
            };
            let mut out = String::new();
            let entries = store.entries_sharing(*func);
            writeln!(
                out,
                "bank function {func} appears in {} of {} stored mappings",
                entries.len(),
                store.len(),
            )
            .expect("write to string");
            // One span scan: the machine set falls out of the matching
            // entries (what MappingStore::machines_sharing would recompute).
            let machines: std::collections::BTreeSet<&str> =
                entries.iter().flat_map(|entry| entry.machines()).collect();
            for entry in &entries {
                let sources: Vec<String> = entry.sources.iter().map(|s| s.to_string()).collect();
                writeln!(out, "  {}", entry.mapping).expect("write to string");
                writeln!(out, "    recovered by {}", sources.join(", ")).expect("write to string");
            }
            if machines.is_empty() {
                writeln!(out, "no machine shares it").expect("write to string");
            } else {
                let machines: Vec<&str> = machines.into_iter().collect();
                writeln!(out, "machines sharing it: {}", machines.join(", "))
                    .expect("write to string");
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_every_sub_command() {
        assert_eq!(
            Command::parse(&args(&["list-machines"])).unwrap(),
            Command::ListMachines
        );
        assert_eq!(Command::parse(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(
            Command::parse(&args(&["uncover", "--machine", "4", "--seed", "9"])).unwrap(),
            Command::Uncover {
                trace: None,
                metrics: None,
                machine: 4,
                seed: 9,
                ablate: None,
                checkpoint: None,
                resume: false,
                budget: None,
                observables: vec![ObservableKind::ConflictTiming],
            }
        );
        assert_eq!(
            Command::parse(&args(&["uncover", "--machine", "4", "--ablate", "spec"])).unwrap(),
            Command::Uncover {
                trace: None,
                metrics: None,
                machine: 4,
                seed: 0xD16,
                ablate: Some(Ablation::Specifications),
                checkpoint: None,
                resume: false,
                budget: None,
                observables: vec![ObservableKind::ConflictTiming],
            }
        );
        assert_eq!(
            Command::parse(&args(&["compare", "--machine", "2"])).unwrap(),
            Command::Compare { machine: 2 }
        );
        assert_eq!(
            Command::parse(&args(&[
                "hammer",
                "--machine",
                "1",
                "--tool",
                "drama",
                "--tests",
                "3"
            ]))
            .unwrap(),
            Command::Hammer {
                machine: 1,
                tool: HammerTool::Drama,
                tests: 3
            }
        );
        assert_eq!(
            Command::parse(&args(&["decode", "--machine", "6", "--addr", "0x1f00"])).unwrap(),
            Command::Decode {
                machine: 6,
                addr: 0x1f00
            }
        );
        assert!(matches!(
            Command::parse(&args(&[
                "validate", "--funcs", "(6)", "--rows", "1~2", "--cols", "0"
            ])),
            Ok(Command::Validate { .. })
        ));
    }

    #[test]
    fn rejects_malformed_command_lines() {
        assert!(Command::parse(&[]).is_err());
        assert!(Command::parse(&args(&["frobnicate"])).is_err());
        assert!(Command::parse(&args(&["uncover"])).is_err());
        assert!(Command::parse(&args(&["uncover", "--machine", "four"])).is_err());
        assert!(
            Command::parse(&args(&["uncover", "--machine", "4", "--ablate", "magic"])).is_err()
        );
        assert!(Command::parse(&args(&["hammer", "--machine", "1", "--tool", "hope"])).is_err());
        assert!(Command::parse(&args(&["decode", "--machine", "1"])).is_err());
    }

    #[test]
    fn list_machines_mentions_all_nine() {
        let out = execute(&Command::ListMachines).unwrap();
        for n in 1..=9 {
            assert!(out.contains(&format!("No.{n}")), "{out}");
        }
    }

    #[test]
    fn decode_round_trips_and_validates_range() {
        let out = execute(&Command::Decode {
            machine: 4,
            addr: 0x1234_5678,
        })
        .unwrap();
        assert!(out.contains("bank"));
        assert!(execute(&Command::Decode {
            machine: 4,
            addr: u64::MAX
        })
        .is_err());
        assert!(execute(&Command::Decode {
            machine: 42,
            addr: 0
        })
        .is_err());
    }

    #[test]
    fn validate_accepts_table_ii_and_rejects_garbage() {
        let ok = execute(&Command::Validate {
            funcs: "(13, 16), (14, 17), (15, 18)".into(),
            rows: "16~31".into(),
            cols: "0~12".into(),
        })
        .unwrap();
        assert!(ok.contains("valid mapping"));
        assert!(ok.contains("banks: 8"));
        assert!(execute(&Command::Validate {
            funcs: "(13, 16)".into(),
            rows: "16~31".into(),
            cols: "0~12".into(),
        })
        .is_err());
    }

    #[test]
    fn uncover_runs_on_a_small_machine() {
        let out = execute(&Command::Uncover {
            trace: None,
            metrics: None,
            machine: 4,
            seed: 1,
            ablate: None,
            checkpoint: None,
            resume: false,
            budget: None,
            observables: vec![ObservableKind::ConflictTiming],
        })
        .unwrap();
        assert!(out.contains("matches"));
        assert!(out.contains("recovered mapping"));
    }

    #[test]
    fn usage_mentions_every_sub_command() {
        let text = usage();
        for cmd in [
            "uncover",
            "compare",
            "hammer",
            "decode",
            "validate",
            "eval",
            "list-machines",
            "campaign run",
            "campaign resume",
            "campaign status",
            "campaign query",
        ] {
            assert!(text.contains(cmd), "usage must mention `{cmd}`");
        }
    }

    #[test]
    fn eval_parses_and_rejects_bad_flags() {
        assert_eq!(
            Command::parse(&args(&["eval", "--grid", "ci"])).unwrap(),
            Command::Eval {
                trace: None,
                metrics: None,
                grid: GridKind::Ci,
                seed: 1,
                workers: 4,
                out: None,
                history: None,
                observables: vec![ObservableKind::ConflictTiming],
            }
        );
        assert_eq!(
            Command::parse(&args(&[
                "eval",
                "--grid",
                "quick",
                "--seed",
                "9",
                "--workers",
                "2",
                "--out",
                "sb.txt",
                "--history",
                "hist.txt"
            ]))
            .unwrap(),
            Command::Eval {
                trace: None,
                metrics: None,
                grid: GridKind::Quick,
                seed: 9,
                workers: 2,
                out: Some("sb.txt".into()),
                history: Some("hist.txt".into()),
                observables: vec![ObservableKind::ConflictTiming],
            }
        );
        assert!(Command::parse(&args(&["eval"])).is_err());
        assert!(Command::parse(&args(&["eval", "--grid", "huge"])).is_err());
        assert!(Command::parse(&args(&["eval", "--grid", "ci", "--workers", "0"])).is_err());
        assert!(Command::parse(&args(&["eval", "--grid", "ci", "--grids", "x"])).is_err());
    }

    #[test]
    fn observables_flag_parses_and_budget_zero_is_rejected_up_front() {
        // The channel list parses on both sub-commands, deduplicated and
        // order-preserving.
        let both = vec![
            ObservableKind::ConflictTiming,
            ObservableKind::FlipAdjacency,
        ];
        match Command::parse(&args(&[
            "eval",
            "--grid",
            "ci",
            "--observables",
            "timing,flip-adjacency,timing",
        ]))
        .unwrap()
        {
            Command::Eval { observables, .. } => assert_eq!(observables, both),
            other => panic!("parsed {other:?}"),
        }
        match Command::parse(&args(&[
            "uncover",
            "--machine",
            "4",
            "--observables",
            "flip-adjacency",
        ]))
        .unwrap()
        {
            Command::Uncover { observables, .. } => {
                assert_eq!(observables, vec![ObservableKind::FlipAdjacency]);
            }
            other => panic!("parsed {other:?}"),
        }
        // Unknown channels and empty lists are usage errors naming the
        // known channels.
        let err = Command::parse(&args(&["eval", "--grid", "ci", "--observables", "psychic"]))
            .unwrap_err();
        assert!(err.to_string().contains("flip-adjacency"), "{err}");
        assert!(Command::parse(&args(&["eval", "--grid", "ci", "--observables", ","])).is_err());

        // `--budget 0` can never run a phase: rejected at parse time with a
        // clear message instead of surfacing as a mid-run interruption.
        let err =
            Command::parse(&args(&["uncover", "--machine", "4", "--budget", "0"])).unwrap_err();
        assert!(
            matches!(&err, CliError::Usage(msg) if msg.contains("at least 1")),
            "{err}"
        );
        assert!(Command::parse(&args(&["uncover", "--machine", "4", "--budget", "1"])).is_ok());
    }

    #[test]
    fn eval_quick_grid_writes_a_deterministic_scoreboard() {
        let out_a = std::env::temp_dir().join(format!("dramdig-eval-a-{}", std::process::id()));
        let out_b = std::env::temp_dir().join(format!("dramdig-eval-b-{}", std::process::id()));
        let hist = std::env::temp_dir().join(format!("dramdig-eval-hist-{}", std::process::id()));
        let run = |path: &std::path::Path, workers: usize| {
            execute(&Command::Eval {
                trace: None,
                metrics: None,
                grid: GridKind::Quick,
                seed: 1,
                workers,
                out: Some(path.to_str().unwrap().to_string()),
                history: Some(hist.to_str().unwrap().to_string()),
                observables: vec![ObservableKind::ConflictTiming],
            })
            .unwrap()
        };
        let stdout_a = run(&out_a, 4);
        let stdout_b = run(&out_b, 1);
        let file_a = std::fs::read_to_string(&out_a).unwrap();
        let file_b = std::fs::read_to_string(&out_b).unwrap();
        assert_eq!(file_a, file_b, "scoreboard must be byte-identical");
        assert_eq!(stdout_a, file_a);
        assert_eq!(stdout_b, file_b);
        assert!(file_a.contains("gate = PASS"), "{file_a}");
        // The second identical run must not duplicate the history line.
        let history = std::fs::read_to_string(&hist).unwrap();
        assert_eq!(history.lines().count(), 1, "{history}");
        assert!(
            history.starts_with("grid=quick seed=1 observables=timing | gate=PASS"),
            "{history}"
        );
        std::fs::remove_file(&out_a).unwrap();
        std::fs::remove_file(&out_b).unwrap();
        std::fs::remove_file(&hist).unwrap();
    }

    #[test]
    fn eval_telemetry_artifacts_are_byte_identical_across_runs() {
        let base = std::env::temp_dir().join(format!("dramdig-eval-telem-{}", std::process::id()));
        let path = |name: &str| base.join(name).to_str().unwrap().to_string();
        std::fs::create_dir_all(&base).unwrap();
        let run = |tag: &str, workers: usize| {
            execute(&Command::Eval {
                grid: GridKind::Quick,
                seed: 1,
                workers,
                out: None,
                history: None,
                observables: vec![ObservableKind::ConflictTiming],
                trace: Some(path(&format!("{tag}.json"))),
                metrics: Some(path(&format!("{tag}.txt"))),
            })
            .unwrap()
        };
        run("a", 4);
        run("b", 1);
        let trace_a = std::fs::read_to_string(base.join("a.json")).unwrap();
        let trace_b = std::fs::read_to_string(base.join("b.json")).unwrap();
        assert_eq!(trace_a, trace_b, "trace must not depend on worker count");
        let metrics_a = std::fs::read_to_string(base.join("a.txt")).unwrap();
        let metrics_b = std::fs::read_to_string(base.join("b.txt")).unwrap();
        assert_eq!(metrics_a, metrics_b, "metrics must not depend on workers");
        assert!(trace_a.starts_with("[\n"), "{trace_a}");
        assert!(trace_a.contains("\"cat\":\"eval_cell\""), "{trace_a}");
        // Pool counters merged in next to the outcome-derived ones.
        assert!(
            metrics_a.contains("counter eval_cells_total 32"),
            "{metrics_a}"
        );
        assert!(
            metrics_a.contains("counter pool_completed_total 32"),
            "{metrics_a}"
        );
        assert!(
            metrics_a.contains("gauge pool_queue_depth 32"),
            "{metrics_a}"
        );
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn uncover_telemetry_artifacts_are_deterministic() {
        let base =
            std::env::temp_dir().join(format!("dramdig-uncover-telem-{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        let run = |tag: &str| {
            let trace = base.join(format!("{tag}.json"));
            let metrics = base.join(format!("{tag}.txt"));
            execute(&Command::Uncover {
                machine: 4,
                seed: 1,
                ablate: None,
                checkpoint: None,
                resume: false,
                budget: None,
                observables: vec![ObservableKind::ConflictTiming],
                trace: Some(trace.to_str().unwrap().to_string()),
                metrics: Some(metrics.to_str().unwrap().to_string()),
            })
            .unwrap();
            (
                std::fs::read_to_string(trace).unwrap(),
                std::fs::read_to_string(metrics).unwrap(),
            )
        };
        let (trace_a, metrics_a) = run("a");
        let (trace_b, metrics_b) = run("b");
        assert_eq!(trace_a, trace_b, "same-seed traces must be byte-identical");
        assert_eq!(metrics_a, metrics_b);
        // Spans for every phase, plus the fine-grained oracle batches that
        // `--trace` switches on.
        for needle in [
            "\"name\":\"calibration\"",
            "\"name\":\"validation\"",
            "\"cat\":\"oracle_batch\"",
        ] {
            assert!(trace_a.contains(needle), "missing {needle}");
        }
        assert!(
            metrics_a.contains("counter measurements_total "),
            "{metrics_a}"
        );
        std::fs::remove_dir_all(&base).unwrap();
    }

    /// Table-driven coverage of the whole parse surface: each row is a
    /// command line and either the command it must parse to or `None` for a
    /// usage error.
    #[test]
    fn parse_table_covers_campaign_and_existing_flags() {
        fn spec(machines: Vec<u8>) -> CampaignSpec {
            CampaignSpec {
                machines,
                seeds: vec![1],
                profiles: vec![Profile::Optimized],
                ablations: vec![None],
                max_retries: 2,
            }
        }
        let table: Vec<(&[&str], Option<Command>)> = vec![
            // --- campaign run: defaults, ranges, explicit dimensions -------
            (
                &["campaign", "run", "--dir", "t2", "--machines", "1-9"],
                Some(Command::Campaign(CampaignAction::Run {
                    trace: None,
                    metrics: None,
                    dir: "t2".into(),
                    spec: spec(vec![1, 2, 3, 4, 5, 6, 7, 8, 9]),
                    workers: 4,
                    limit: None,
                })),
            ),
            (
                &[
                    "campaign",
                    "run",
                    "--dir",
                    "d",
                    "--machines",
                    "4,7",
                    "--workers",
                    "8",
                    "--limit",
                    "3",
                ],
                Some(Command::Campaign(CampaignAction::Run {
                    trace: None,
                    metrics: None,
                    dir: "d".into(),
                    spec: spec(vec![4, 7]),
                    workers: 8,
                    limit: Some(3),
                })),
            ),
            (
                &[
                    "campaign",
                    "run",
                    "--dir",
                    "d",
                    "--machines",
                    "1,3-5",
                    "--seeds",
                    "1,2",
                    "--profiles",
                    "naive,optimized",
                    "--ablations",
                    "none,sysinfo",
                    "--retries",
                    "0",
                ],
                Some(Command::Campaign(CampaignAction::Run {
                    trace: None,
                    metrics: None,
                    dir: "d".into(),
                    spec: CampaignSpec {
                        machines: vec![1, 3, 4, 5],
                        seeds: vec![1, 2],
                        profiles: vec![Profile::Naive, Profile::Optimized],
                        ablations: vec![None, Some(campaign::Ablation::SystemInfo)],
                        max_retries: 0,
                    },
                    workers: 4,
                    limit: None,
                })),
            ),
            // --- campaign resume/status/query ------------------------------
            (
                &["campaign", "resume", "--dir", "t2"],
                Some(Command::Campaign(CampaignAction::Resume {
                    dir: "t2".into(),
                    workers: 4,
                    limit: None,
                })),
            ),
            (
                &[
                    "campaign",
                    "resume",
                    "--dir",
                    "t2",
                    "--workers",
                    "2",
                    "--limit",
                    "1",
                ],
                Some(Command::Campaign(CampaignAction::Resume {
                    dir: "t2".into(),
                    workers: 2,
                    limit: Some(1),
                })),
            ),
            (
                &["campaign", "status", "--dir", "t2"],
                Some(Command::Campaign(CampaignAction::Status {
                    dir: "t2".into(),
                })),
            ),
            (
                &["campaign", "query", "--dir", "t2", "--func", "(13, 16)"],
                Some(Command::Campaign(CampaignAction::Query {
                    dir: "t2".into(),
                    func: "(13, 16)".into(),
                })),
            ),
            // --- campaign usage errors -------------------------------------
            (&["campaign"], None),
            (&["campaign", "launch"], None),
            (&["campaign", "run", "--machines", "1-9"], None), // no --dir
            (&["campaign", "run", "--dir", "d"], None),        // no --machines
            (
                &["campaign", "run", "--dir", "d", "--machines", "9-1"],
                None,
            ),
            (&["campaign", "run", "--dir", "d", "--machines", "x"], None),
            // 260 must not truncate onto machine 4 (260 % 256).
            (
                &["campaign", "run", "--dir", "d", "--machines", "260"],
                None,
            ),
            (&["campaign", "run", "--dir", "d", "--machines", "0"], None),
            // Misspelled flags must fail up front, not run a default sweep.
            (
                &[
                    "campaign",
                    "run",
                    "--dir",
                    "d",
                    "--machines",
                    "4",
                    "--profile",
                    "naive",
                ],
                None,
            ),
            (
                &["campaign", "run", "--dir", "d", "--machines", "4", "stray"],
                None,
            ),
            (&["campaign", "run", "--dir", "d", "--machines"], None),
            (
                &["campaign", "resume", "--dir", "d", "--machines", "4"],
                None,
            ),
            (
                &["campaign", "status", "--dir", "d", "--workers", "2"],
                None,
            ),
            (&["campaign", "query", "--dir", "d", "--funcs", "(6)"], None),
            (
                &["campaign", "run", "--dir", "d", "--machines", "1-300"],
                None,
            ),
            (&["campaign", "run", "--dir", "d", "--machines", ","], None),
            (
                &[
                    "campaign",
                    "run",
                    "--dir",
                    "d",
                    "--machines",
                    "4",
                    "--profiles",
                    "warp",
                ],
                None,
            ),
            (
                &[
                    "campaign",
                    "run",
                    "--dir",
                    "d",
                    "--machines",
                    "4",
                    "--ablations",
                    "warp",
                ],
                None,
            ),
            (
                &[
                    "campaign",
                    "run",
                    "--dir",
                    "d",
                    "--machines",
                    "4",
                    "--workers",
                    "0",
                ],
                None,
            ),
            (
                &[
                    "campaign",
                    "run",
                    "--dir",
                    "d",
                    "--machines",
                    "4",
                    "--seeds",
                    ",",
                ],
                None,
            ),
            (&["campaign", "resume"], None),
            (&["campaign", "status"], None),
            (&["campaign", "query", "--dir", "t2"], None),
            // --- existing sub-commands stay intact -------------------------
            (
                &["uncover", "--machine", "4", "--seed", "9"],
                Some(Command::Uncover {
                    trace: None,
                    metrics: None,
                    machine: 4,
                    seed: 9,
                    ablate: None,
                    checkpoint: None,
                    resume: false,
                    budget: None,
                    observables: vec![ObservableKind::ConflictTiming],
                }),
            ),
            (
                &["uncover", "--machine", "0x4", "--ablate", "empirical"],
                Some(Command::Uncover {
                    trace: None,
                    metrics: None,
                    machine: 4,
                    seed: 0xD16,
                    ablate: Some(Ablation::Empirical),
                    checkpoint: None,
                    resume: false,
                    budget: None,
                    observables: vec![ObservableKind::ConflictTiming],
                }),
            ),
            (
                &[
                    "uncover",
                    "--machine",
                    "4",
                    "--checkpoint",
                    "ckpt",
                    "--budget",
                    "600",
                ],
                Some(Command::Uncover {
                    trace: None,
                    metrics: None,
                    machine: 4,
                    seed: 0xD16,
                    ablate: None,
                    checkpoint: Some("ckpt".into()),
                    resume: false,
                    budget: Some(600),
                    observables: vec![ObservableKind::ConflictTiming],
                }),
            ),
            (
                &[
                    "uncover",
                    "--machine",
                    "4",
                    "--checkpoint",
                    "ckpt",
                    "--resume",
                ],
                Some(Command::Uncover {
                    trace: None,
                    metrics: None,
                    machine: 4,
                    seed: 0xD16,
                    ablate: None,
                    checkpoint: Some("ckpt".into()),
                    resume: true,
                    budget: None,
                    observables: vec![ObservableKind::ConflictTiming],
                }),
            ),
            // --resume without --checkpoint has nothing to resume from.
            (&["uncover", "--machine", "4", "--resume"], None),
            (&["uncover", "--machine", "4", "--budget", "lots"], None),
            // Misspelled stateful flags must fail loudly, not silently run
            // an uncheckpointed pipeline.
            (&["uncover", "--machine", "4", "--chekpoint", "d"], None),
            (
                &[
                    "uncover",
                    "--machine",
                    "4",
                    "--checkpoint",
                    "d",
                    "--budjet",
                    "600",
                ],
                None,
            ),
            (&["uncover", "--machine", "4", "stray"], None),
            (
                &["compare", "--machine", "2"],
                Some(Command::Compare { machine: 2 }),
            ),
            (
                &["hammer", "--machine", "1", "--tool", "truth"],
                Some(Command::Hammer {
                    machine: 1,
                    tool: HammerTool::Truth,
                    tests: 1,
                }),
            ),
            (
                &["decode", "--machine", "6", "--addr", "64"],
                Some(Command::Decode {
                    machine: 6,
                    addr: 64,
                }),
            ),
            (&["list-machines"], Some(Command::ListMachines)),
            (&["help"], Some(Command::Help)),
            (&["uncover"], None),
            (&["uncover", "--machine", "four"], None),
            (&["hammer", "--machine", "1", "--tool", "hope"], None),
            (&["frobnicate"], None),
            // --- telemetry flags on uncover, eval and campaign run ---------
            (
                &[
                    "uncover",
                    "--machine",
                    "4",
                    "--trace",
                    "trace.json",
                    "--metrics",
                    "metrics.txt",
                ],
                Some(Command::Uncover {
                    machine: 4,
                    seed: 0xD16,
                    ablate: None,
                    checkpoint: None,
                    resume: false,
                    budget: None,
                    observables: vec![ObservableKind::ConflictTiming],
                    trace: Some("trace.json".into()),
                    metrics: Some("metrics.txt".into()),
                }),
            ),
            (
                &["eval", "--grid", "ci", "--trace", "trace.json"],
                Some(Command::Eval {
                    grid: GridKind::Ci,
                    seed: 1,
                    workers: 4,
                    out: None,
                    history: None,
                    observables: vec![ObservableKind::ConflictTiming],
                    trace: Some("trace.json".into()),
                    metrics: None,
                }),
            ),
            (
                &[
                    "campaign",
                    "run",
                    "--dir",
                    "t2",
                    "--machines",
                    "4",
                    "--metrics",
                    "metrics.txt",
                ],
                Some(Command::Campaign(CampaignAction::Run {
                    dir: "t2".into(),
                    spec: spec(vec![4]),
                    workers: 4,
                    limit: None,
                    trace: None,
                    metrics: Some("metrics.txt".into()),
                })),
            ),
            // Misspelled telemetry flags fail loudly instead of silently
            // running without the requested artifact.
            (&["uncover", "--machine", "4", "--traces", "t.json"], None),
            (&["eval", "--grid", "ci", "--metric", "m.txt"], None),
            (
                &[
                    "campaign",
                    "run",
                    "--dir",
                    "d",
                    "--machines",
                    "4",
                    "--trace-out",
                    "t.json",
                ],
                None,
            ),
        ];
        for (words, expected) in table {
            let parsed = Command::parse(&args(words));
            match expected {
                Some(command) => {
                    assert_eq!(parsed.ok(), Some(command), "while parsing {words:?}")
                }
                None => {
                    let err = parsed.expect_err(&format!("{words:?} must be rejected"));
                    assert!(
                        matches!(err, CliError::Usage(_)),
                        "{words:?} must be a usage error, got {err:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn uncover_checkpoint_budget_resume_lifecycle() {
        let dir = std::env::temp_dir().join(format!("dramdig-cli-uncover-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_str = dir.to_str().unwrap().to_string();
        let uncover = |checkpoint: Option<String>, resume: bool, budget: Option<u64>| {
            execute(&Command::Uncover {
                trace: None,
                metrics: None,
                machine: 4,
                seed: 1,
                ablate: None,
                checkpoint,
                resume,
                budget,
                observables: vec![ObservableKind::ConflictTiming],
            })
        };

        // Budget kills the run after the partition; the interruption is a
        // report, not an error, and names the resume command.
        let out = uncover(Some(dir_str.clone()), false, Some(600)).unwrap();
        assert!(out.contains("interrupted before"), "{out}");
        assert!(out.contains("--resume"), "{out}");
        assert!(dir.join("02-partition.phase").exists());

        // Resuming without a prior checkpoint in a fresh dir is refused.
        let err = uncover(Some(format!("{dir_str}-nope")), true, None).unwrap_err();
        assert!(err.to_string().contains("no checkpoint"), "{err}");

        // A different run (other machine/ablation) must not adopt the dir.
        let err = execute(&Command::Uncover {
            trace: None,
            metrics: None,
            machine: 7,
            seed: 1,
            ablate: None,
            checkpoint: Some(dir_str.clone()),
            resume: true,
            budget: None,
            observables: vec![ObservableKind::ConflictTiming],
        })
        .unwrap_err();
        assert!(err.to_string().contains("different run"), "{err}");

        // Resume completes, and the report is byte-identical to an
        // uninterrupted run of the same seed.
        let resumed = uncover(Some(dir_str.clone()), true, None).unwrap();
        let straight = uncover(None, false, None).unwrap();
        assert_eq!(resumed, straight);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn campaign_lifecycle_run_interrupt_resume_status_query() {
        let dir = std::env::temp_dir().join(format!("dramdig-cli-campaign-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_str = dir.to_str().unwrap().to_string();
        let spec = CampaignSpec {
            machines: vec![4, 7],
            seeds: vec![1],
            profiles: vec![Profile::Fast],
            ablations: vec![None],
            max_retries: 2,
        };

        // Run with --limit 1: an interrupted campaign.
        let out = execute(&Command::Campaign(CampaignAction::Run {
            trace: None,
            metrics: None,
            dir: dir_str.clone(),
            spec: spec.clone(),
            workers: 1,
            limit: Some(1),
        }))
        .unwrap();
        assert!(out.contains("1/2 jobs completed"), "{out}");
        assert!(out.contains("campaign resume"), "{out}");

        // Status sees the pending half.
        let out = execute(&Command::Campaign(CampaignAction::Status {
            dir: dir_str.clone(),
        }))
        .unwrap();
        assert!(out.contains("1/2 completed"), "{out}");
        assert!(out.contains("pending"), "{out}");

        // Re-running with a different spec is refused.
        let err = execute(&Command::Campaign(CampaignAction::Run {
            trace: None,
            metrics: None,
            dir: dir_str.clone(),
            spec: CampaignSpec {
                machines: vec![4],
                ..spec.clone()
            },
            workers: 1,
            limit: None,
        }))
        .unwrap_err();
        assert!(err.to_string().contains("different campaign"), "{err}");

        // Resume finishes the rest.
        let out = execute(&Command::Campaign(CampaignAction::Resume {
            dir: dir_str.clone(),
            workers: 2,
            limit: None,
        }))
        .unwrap();
        assert!(out.contains("2/2 jobs completed"), "{out}");
        assert!(out.contains("distinct mappings"), "{out}");

        // Query the store for machine 4's bank function.
        let out = execute(&Command::Campaign(CampaignAction::Query {
            dir: dir_str.clone(),
            func: "(13, 16)".into(),
        }))
        .unwrap();
        assert!(out.contains("machines sharing it: No.4"), "{out}");
        let out = execute(&Command::Campaign(CampaignAction::Query {
            dir: dir_str.clone(),
            func: "(2, 3)".into(),
        }))
        .unwrap();
        assert!(out.contains("no machine shares it"), "{out}");
        assert!(execute(&Command::Campaign(CampaignAction::Query {
            dir: dir_str.clone(),
            func: "(13, 16), (14, 17)".into(),
        }))
        .is_err());

        // A truncated/corrupt store.txt must not make the campaign
        // unqueryable: the query rebuilds from the journal.
        std::fs::write(dir.join("store.txt"), "[mapping]\nfuncs = (13,").unwrap();
        let out = execute(&Command::Campaign(CampaignAction::Query {
            dir: dir_str.clone(),
            func: "(13, 16)".into(),
        }))
        .unwrap();
        assert!(out.contains("machines sharing it: No.4"), "{out}");

        // Status/resume on a directory without a campaign fail cleanly.
        assert!(execute(&Command::Campaign(CampaignAction::Status {
            dir: format!("{dir_str}-nope"),
        }))
        .is_err());

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
