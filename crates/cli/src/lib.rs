//! Command-line front end for the DRAMDig reproduction.
//!
//! The binary is called `dramdig` and offers one sub-command per workflow:
//!
//! ```text
//! dramdig list-machines
//! dramdig uncover  --machine 4 [--seed 7] [--ablate spec|sysinfo|empirical]
//!                  [--checkpoint dir] [--resume] [--budget 600]
//! dramdig compare  --machine 2
//! dramdig hammer   --machine 1 [--tool dramdig|drama|truth] [--tests 5]
//! dramdig decode   --machine 6 --addr 0x3fe4c40
//! dramdig validate --funcs "(13, 16), (14, 17), (15, 18)" --rows 16~31 --cols 0~12
//! dramdig eval     --grid ci [--seed 1] [--workers 4] [--out SCOREBOARD.txt]
//! dramdig campaign run    --dir t2 --machines 1-9 [--seeds 1] [--profiles optimized]
//! dramdig campaign resume --dir t2 [--workers 4]
//! dramdig campaign status --dir t2
//! dramdig campaign query  --dir t2 --func "(13, 16)"
//! dramdig campaign mapreduce --dir grid --scenarios 1000 [--processes 4]
//! dramdig campaign worker [--inject-kill 2]
//! dramdig campaign dlq    list --dir grid
//! dramdig registry import --campaign t2 --registry reg [--shards 4]
//! dramdig registry gen    --registry reg --grid ci
//! dramdig registry query  --registry reg --func "(13, 16)"
//! dramdig registry stats  --registry reg
//! dramdig serve    --registry reg [--input requests.txt] [--metrics m.txt]
//! ```
//!
//! Everything runs against the simulated machines of Table II; on a real
//! machine the same library calls can be driven with
//! [`mem_probe::HwProbe`] instead (see the `hardware_probe` example).
//!
//! Argument parsing is deliberately dependency-free: [`Command::parse`]
//! understands `--flag value` pairs and returns a typed command that
//! [`execute`] turns into a plain-text report.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;
use std::fmt::Write as _;

use campaign::{
    campaign_status, run_campaign_with_metrics, CampaignOptions, CampaignOutcome, CampaignPaths,
    CampaignSpec, MappingStore, Profile,
};
use dram_baselines::{BaselineError, Drama, DramaConfig, Xiao};
use dram_model::{parse, MachineSetting, PhysAddr};
use dram_sim::{PhysMemory, SimConfig, SimMachine};
use dramdig::engine::{Budget, EngineEvent, EngineOptions, Observer, PipelineEngine};
use dramdig::{
    CheckpointStore, DomainKnowledge, DramDig, DramDigConfig, DramDigError, TelemetryObserver,
};
use dramdig_bench::eval::{
    outcome_metrics, outcome_tracer, run_grid_metered, run_grid_with_observables, summary_line,
    EvalGrid, GridKind,
};
use mem_probe::{ObservableKind, SimProbe};
use rowhammer::{
    run_double_sided, AttackerView, FlipAdjacencyConfig, FlipAdjacencyObservable, HammerConfig,
};

/// Which knowledge group to disable in an `uncover --ablate` run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    /// Drop the DDR specification (row/column bit counts).
    Specifications,
    /// Drop the system information (total bank count).
    SystemInfo,
    /// Drop the empirical observations.
    Empirical,
}

/// Which tool's mapping to hammer with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HammerTool {
    /// The mapping DRAMDig uncovers.
    DramDig,
    /// The (partial) mapping DRAMA uncovers.
    Drama,
    /// The simulator's ground truth (upper bound).
    Truth,
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `dramdig list-machines`
    ListMachines,
    /// `dramdig uncover --machine N [--seed S] [--ablate GROUP]
    /// [--checkpoint DIR] [--resume] [--budget N] [--trace PATH]
    /// [--metrics PATH]`
    Uncover {
        /// Table-II machine number (1–9).
        machine: u8,
        /// Simulator noise seed.
        seed: u64,
        /// Optional knowledge group to disable.
        ablate: Option<Ablation>,
        /// Phase-checkpoint directory: completed phases are persisted here
        /// and an interrupted run can be continued with `--resume`.
        checkpoint: Option<String>,
        /// Resume from the checkpoint directory's recorded configuration
        /// instead of starting fresh.
        resume: bool,
        /// Measurement budget: stop (checkpointing, when `--checkpoint` is
        /// given) once this many pair measurements were spent.
        budget: Option<u64>,
        /// Observable channels to run with; declaring `flip-adjacency`
        /// additionally consults a rowhammer channel after the pipeline.
        observables: Vec<ObservableKind>,
        /// Optional path a Chrome-trace JSON of the run is written to.
        trace: Option<String>,
        /// Optional path a metrics snapshot of the run is written to.
        metrics: Option<String>,
    },
    /// `dramdig compare --machine N`
    Compare {
        /// Table-II machine number (1–9).
        machine: u8,
    },
    /// `dramdig hammer --machine N [--tool T] [--tests K]`
    Hammer {
        /// Table-II machine number (1–9).
        machine: u8,
        /// Whose mapping to hammer with.
        tool: HammerTool,
        /// Number of repeated tests.
        tests: u32,
    },
    /// `dramdig decode --machine N --addr A`
    Decode {
        /// Table-II machine number (1–9).
        machine: u8,
        /// Physical address to decode.
        addr: u64,
    },
    /// `dramdig validate --funcs F --rows R --cols C`
    Validate {
        /// Bank functions in paper notation.
        funcs: String,
        /// Row bits in range notation.
        rows: String,
        /// Column bits in range notation.
        cols: String,
    },
    /// `dramdig eval --grid G [--seed S] [--workers N] [--out PATH]
    /// [--history PATH] [--trace PATH] [--metrics PATH]`
    Eval {
        /// Scenario grid preset (quick, ci or full).
        grid: GridKind,
        /// Grid seed every scenario derives from.
        seed: u64,
        /// Worker threads draining the scenario × tool cells.
        workers: usize,
        /// Optional path the scoreboard artifact is written to.
        out: Option<String>,
        /// Optional longitudinal history file the run is appended to under
        /// the regression gate (same key must reproduce its line).
        history: Option<String>,
        /// Observable channels DRAMDig runs with across the grid.
        observables: Vec<ObservableKind>,
        /// Optional path a Chrome-trace JSON of the grid is written to.
        trace: Option<String>,
        /// Optional path a metrics snapshot of the grid is written to.
        metrics: Option<String>,
    },
    /// `dramdig campaign <run|resume|status|query> ...`
    Campaign(CampaignAction),
    /// `dramdig registry <import|gen|query|stats> ...`
    Registry(RegistryAction),
    /// `dramdig serve --registry DIR [--input PATH] [--metrics PATH]`
    Serve {
        /// Registry directory to answer from.
        registry: String,
        /// Read request lines from this file instead of stdin.
        input: Option<String>,
        /// Optional path a metrics snapshot of the session is written to.
        metrics: Option<String>,
    },
    /// `dramdig help`
    Help,
}

/// What a `dramdig registry` invocation does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryAction {
    /// `dramdig registry import --campaign D --registry R [--shards N]
    /// [--crash-after N]`
    Import {
        /// Campaign directory whose journal feeds the import.
        campaign_dir: String,
        /// Registry directory (created on first import).
        registry_dir: String,
        /// Shard count when the registry is created (ignored on reopen).
        shards: u32,
        /// Fault injection: crash after writing this many segment files,
        /// before the manifest publish (CI recovery smoke).
        crash_after: Option<usize>,
    },
    /// `dramdig registry gen --registry R (--grid G | --count N)
    /// [--seed S] [--shards N]`
    Gen {
        /// Registry directory (created when missing).
        registry_dir: String,
        /// Source the corpus from an eval scenario grid.
        grid: Option<GridKind>,
        /// Source the corpus from N generated in-scope machines.
        count: Option<u64>,
        /// Generator / grid seed.
        seed: u64,
        /// Shard count when the registry is created (ignored on reopen).
        shards: u32,
    },
    /// `dramdig registry query --registry R
    /// (--func F | --fingerprint X | --nearest "F, .." [--k N])`
    Query {
        /// Registry directory.
        registry_dir: String,
        /// Span-membership query: one bank function in paper notation.
        func: Option<String>,
        /// Exact content-addressed lookup (hex fingerprint).
        fingerprint: Option<String>,
        /// Nearest stored mappings to a partial recovery (function list).
        nearest: Option<String>,
        /// Maximum hits a `--nearest` query returns.
        k: usize,
    },
    /// `dramdig registry stats --registry R`
    Stats {
        /// Registry directory.
        registry_dir: String,
    },
}

/// What a `dramdig campaign` invocation does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignAction {
    /// `dramdig campaign run --dir D --machines 1-9 [--seeds S] [--profiles P]
    /// [--ablations A] [--retries N] [--workers N] [--limit N] [--trace PATH]
    /// [--metrics PATH]`
    Run {
        /// Campaign directory (spec, journal and store live here).
        dir: String,
        /// The expanded campaign description.
        spec: CampaignSpec,
        /// Worker threads draining the job queue.
        workers: usize,
        /// Stop after this many completions (simulates an interruption).
        limit: Option<usize>,
        /// Optional path a Chrome-trace JSON of the campaign is written to.
        trace: Option<String>,
        /// Optional path a metrics snapshot of the campaign is written to.
        metrics: Option<String>,
    },
    /// `dramdig campaign resume --dir D [--workers N] [--limit N]`
    Resume {
        /// Campaign directory holding the persisted spec.
        dir: String,
        /// Worker threads draining the job queue.
        workers: usize,
        /// Stop after this many completions (simulates an interruption).
        limit: Option<usize>,
    },
    /// `dramdig campaign status --dir D`
    Status {
        /// Campaign directory.
        dir: String,
    },
    /// `dramdig campaign query --dir D --func "(13, 16)"`
    Query {
        /// Campaign directory.
        dir: String,
        /// Bank function in paper notation.
        func: String,
    },
    /// `dramdig campaign mapreduce --dir D --scenarios N [--seed S]
    /// [--profile P] [--retries N] [--processes N] [--transport process|sim]
    /// [--worker-bin PATH] [--inject-kill W:J] [--history PATH]
    /// [--metrics PATH]`
    Mapreduce {
        /// Grid campaign directory (grid spec, journal, store, scoreboard).
        dir: String,
        /// The generated-machine grid description.
        spec: campaign::mapreduce::GridSpec,
        /// Worker count (processes or simulated in-process workers).
        processes: usize,
        /// Worker transport: real processes or in-process simulated remotes.
        transport: MapTransport,
        /// Worker binary override (defaults to the running executable).
        worker_bin: Option<String>,
        /// Fault injection: worker W dies on its J-th request (`W:J`).
        inject_kill: Option<(u32, u32)>,
        /// Longitudinal history file the finished grid is appended to under
        /// the drift gate.
        history: Option<String>,
        /// Optional path a metrics snapshot of the run is written to.
        metrics: Option<String>,
    },
    /// `dramdig campaign worker [--inject-kill N]` — the JSONL request loop
    /// a coordinator drives over stdin/stdout.
    Worker {
        /// Fault injection: SIGKILL self on the N-th request.
        inject_kill: Option<u32>,
    },
    /// `dramdig campaign dlq <list|inspect|retry|reprocess> --dir D
    /// [--job ID]`
    Dlq {
        /// Campaign directory (classic or mapreduce).
        dir: String,
        /// What to do with the dead-letter queue.
        op: DlqOp,
        /// Restrict retry/reprocess/inspect to one job id.
        job: Option<String>,
    },
}

/// How `campaign mapreduce` talks to its workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapTransport {
    /// Spawn real `dramdig campaign worker` processes.
    Process,
    /// In-process simulated remote workers (deterministic tests/benches).
    Sim,
}

/// What a `dramdig campaign dlq` invocation does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DlqOp {
    /// Print the dead-letter queue, one job per line.
    List,
    /// Print one dead letter in full (unescaped reason).
    Inspect,
    /// Requeue dead letters keeping the attempt ledger (fresh seeds).
    Retry,
    /// Requeue dead letters from scratch (attempt 1, base seed).
    Reprocess,
}

/// Errors produced while parsing or executing a command.
#[derive(Debug)]
pub enum CliError {
    /// The command line could not be parsed.
    Usage(String),
    /// The requested machine number does not exist.
    UnknownMachine(u8),
    /// A library call failed.
    Tool(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::UnknownMachine(n) => {
                write!(
                    f,
                    "unknown machine number {n}; expected 1..=9 (see `dramdig list-machines`)"
                )
            }
            CliError::Tool(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// The usage string printed on parse errors and by `dramdig help`.
pub fn usage() -> String {
    concat!(
        "dramdig — knowledge-assisted DRAM address mapping reverse engineering\n",
        "\n",
        "USAGE:\n",
        "  dramdig list-machines\n",
        "  dramdig uncover  --machine <1-9> [--seed <u64>] [--ablate spec|sysinfo|empirical]\n",
        "                   [--checkpoint <dir>] [--resume] [--budget <measurements>]\n",
        "                   [--observables timing[,flip-adjacency]]\n",
        "                   [--trace <path>] [--metrics <path>]\n",
        "  dramdig compare  --machine <1-9>\n",
        "  dramdig hammer   --machine <1-9> [--tool dramdig|drama|truth] [--tests <n>]\n",
        "  dramdig decode   --machine <1-9> --addr <hex or decimal physical address>\n",
        "  dramdig validate --funcs \"(13, 16), ...\" --rows 16~31 --cols 0~12\n",
        "  dramdig eval     --grid quick|ci|full [--seed <u64>] [--workers <n>]\n",
        "                   [--out <path>] [--history <path>]\n",
        "                   [--observables timing[,flip-adjacency]]\n",
        "                   [--trace <path>] [--metrics <path>]\n",
        "  dramdig campaign run    --dir <dir> --machines <1-9|4,7> [--seeds <s,..>]\n",
        "                          [--profiles naive|default|fast|optimized[,..]]\n",
        "                          [--ablations none|spec|sysinfo|empirical[,..]]\n",
        "                          [--retries <n>] [--workers <n>] [--limit <n>]\n",
        "                          [--trace <path>] [--metrics <path>]\n",
        "  dramdig campaign resume --dir <dir> [--workers <n>] [--limit <n>]\n",
        "  dramdig campaign status --dir <dir>\n",
        "  dramdig campaign query  --dir <dir> --func \"(13, 16)\"\n",
        "  dramdig campaign mapreduce --dir <dir> --scenarios <n> [--seed <u64>]\n",
        "                          [--profile naive|default|fast|optimized]\n",
        "                          [--retries <n>] [--processes <n>]\n",
        "                          [--transport process|sim] [--worker-bin <path>]\n",
        "                          [--inject-kill <worker>:<request>]\n",
        "                          [--history <path>] [--metrics <path>]\n",
        "  dramdig campaign worker [--inject-kill <n>]\n",
        "  dramdig campaign dlq    list|inspect|retry|reprocess --dir <dir> [--job <id>]\n",
        "  dramdig registry import --campaign <dir> --registry <dir> [--shards <n>]\n",
        "                          [--crash-after <n>]\n",
        "  dramdig registry gen    --registry <dir> (--grid quick|ci|full | --count <n>)\n",
        "                          [--seed <u64>] [--shards <n>]\n",
        "  dramdig registry query  --registry <dir> (--func \"(13, 16)\"\n",
        "                          | --fingerprint <hex> | --nearest \"(13, 16), ...\" [--k <n>])\n",
        "  dramdig registry stats  --registry <dir>\n",
        "  dramdig serve    --registry <dir> [--input <request file>] [--metrics <path>]\n",
        "  dramdig help\n",
    )
    .to_string()
}

/// Extracts `--key value` pairs from an argument list.
fn flag_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_u64(text: &str) -> Result<u64, CliError> {
    let parsed = if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        text.parse()
    };
    parsed.map_err(|_| CliError::Usage(format!("`{text}` is not a valid number")))
}

/// Parses the `--observables` channel list (comma-separated
/// [`ObservableKind`] names, deduplicated, order preserved). Defaults to
/// timing-only, the channel the pipeline itself runs on.
fn parse_observables(rest: &[String]) -> Result<Vec<ObservableKind>, CliError> {
    let Some(list) = flag_value(rest, "--observables") else {
        return Ok(vec![ObservableKind::ConflictTiming]);
    };
    let mut kinds = Vec::new();
    for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let kind = ObservableKind::from_name(name).ok_or_else(|| {
            let known: Vec<&str> = ObservableKind::ALL.iter().map(|k| k.as_str()).collect();
            CliError::Usage(format!(
                "unknown observable `{name}` (expected {})",
                known.join(", ")
            ))
        })?;
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
    }
    if kinds.is_empty() {
        return Err(CliError::Usage("`--observables` names no channels".into()));
    }
    Ok(kinds)
}

fn required<'a>(args: &'a [String], key: &str, command: &str) -> Result<&'a str, CliError> {
    flag_value(args, key)
        .ok_or_else(|| CliError::Usage(format!("`dramdig {command}` requires {key} <value>")))
}

/// Parses a machine list with ranges, e.g. `1-9` or `4,7` or `1,3-5`.
/// Each number goes through [`campaign::parse_machine_number`], so
/// out-of-range values are rejected instead of truncated onto a valid
/// machine.
fn parse_machine_list(text: &str) -> Result<Vec<u8>, CliError> {
    let number = |item: &str| campaign::parse_machine_number(item).map_err(CliError::Usage);
    let mut machines = Vec::new();
    for item in text.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        if let Some((lo, hi)) = item.split_once('-') {
            let lo = number(lo)?;
            let hi = number(hi)?;
            if lo > hi {
                return Err(CliError::Usage(format!("empty machine range `{item}`")));
            }
            machines.extend(lo..=hi);
        } else {
            machines.push(number(item)?);
        }
    }
    if machines.is_empty() {
        return Err(CliError::Usage(format!("`{text}` names no machines")));
    }
    Ok(machines)
}

/// Rejects anything that is not a known `--flag value` pair. A misspelled
/// dimension flag (`--profile` for `--profiles`) must fail up front, not
/// silently sweep the default dimension and persist the wrong spec.
fn reject_unknown_flags(rest: &[String], allowed: &[&str], command: &str) -> Result<(), CliError> {
    reject_unknown_flags_with_bare(rest, allowed, &[], command)
}

/// [`reject_unknown_flags`] with an extra set of `bare` flags that take no
/// value (e.g. `--resume`).
fn reject_unknown_flags_with_bare(
    rest: &[String],
    allowed: &[&str],
    bare: &[&str],
    command: &str,
) -> Result<(), CliError> {
    let mut i = 0;
    while i < rest.len() {
        let token = rest[i].as_str();
        if !token.starts_with("--") {
            return Err(CliError::Usage(format!(
                "unexpected argument `{token}` for `dramdig {command}`"
            )));
        }
        if bare.contains(&token) {
            i += 1;
            continue;
        }
        if !allowed.contains(&token) {
            let mut expected: Vec<&str> = allowed.iter().chain(bare).copied().collect();
            expected.sort_unstable();
            return Err(CliError::Usage(format!(
                "unknown flag `{token}` for `dramdig {command}` (expected {})",
                expected.join(", ")
            )));
        }
        if i + 1 >= rest.len() {
            return Err(CliError::Usage(format!("`{token}` requires a value")));
        }
        i += 2;
    }
    Ok(())
}

fn parse_campaign(rest: &[String]) -> Result<CampaignAction, CliError> {
    let Some(action) = rest.first() else {
        return Err(CliError::Usage(
            "`dramdig campaign` requires run, resume, status, query, mapreduce, worker or dlq"
                .into(),
        ));
    };
    let rest = &rest[1..];
    let workers = |rest: &[String]| -> Result<usize, CliError> {
        match flag_value(rest, "--workers") {
            Some(w) => {
                let workers = parse_u64(w)? as usize;
                if workers == 0 {
                    return Err(CliError::Usage("--workers must be at least 1".into()));
                }
                Ok(workers)
            }
            None => Ok(4),
        }
    };
    let limit = |rest: &[String]| -> Result<Option<usize>, CliError> {
        flag_value(rest, "--limit")
            .map(|l| parse_u64(l).map(|v| v as usize))
            .transpose()
    };
    match action.as_str() {
        "run" => {
            reject_unknown_flags(
                rest,
                &[
                    "--dir",
                    "--machines",
                    "--seeds",
                    "--profiles",
                    "--ablations",
                    "--retries",
                    "--workers",
                    "--limit",
                    "--trace",
                    "--metrics",
                ],
                "campaign run",
            )?;
            let dir = required(rest, "--dir", "campaign run")?.to_string();
            let machines = parse_machine_list(required(rest, "--machines", "campaign run")?)?;
            let seeds = match flag_value(rest, "--seeds") {
                Some(list) => list
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(parse_u64)
                    .collect::<Result<Vec<u64>, CliError>>()?,
                None => vec![1],
            };
            let profiles = match flag_value(rest, "--profiles") {
                Some(list) => Profile::parse_list(list).map_err(CliError::Usage)?,
                None => vec![Profile::Optimized],
            };
            let ablations = match flag_value(rest, "--ablations") {
                Some(list) => campaign::Ablation::parse_list(list).map_err(CliError::Usage)?,
                None => vec![None],
            };
            let max_retries = match flag_value(rest, "--retries") {
                Some(r) => u32::try_from(parse_u64(r)?).map_err(|_| {
                    CliError::Usage(format!("--retries {r} does not fit a 32-bit count"))
                })?,
                None => 2,
            };
            let spec = CampaignSpec {
                machines,
                seeds,
                profiles,
                ablations,
                max_retries,
            };
            if spec.seeds.is_empty() || spec.profiles.is_empty() || spec.ablations.is_empty() {
                return Err(CliError::Usage("campaign spec expands to zero jobs".into()));
            }
            Ok(CampaignAction::Run {
                dir,
                spec,
                workers: workers(rest)?,
                limit: limit(rest)?,
                trace: flag_value(rest, "--trace").map(str::to_string),
                metrics: flag_value(rest, "--metrics").map(str::to_string),
            })
        }
        "resume" => {
            reject_unknown_flags(rest, &["--dir", "--workers", "--limit"], "campaign resume")?;
            Ok(CampaignAction::Resume {
                dir: required(rest, "--dir", "campaign resume")?.to_string(),
                workers: workers(rest)?,
                limit: limit(rest)?,
            })
        }
        "status" => {
            reject_unknown_flags(rest, &["--dir"], "campaign status")?;
            Ok(CampaignAction::Status {
                dir: required(rest, "--dir", "campaign status")?.to_string(),
            })
        }
        "query" => {
            reject_unknown_flags(rest, &["--dir", "--func"], "campaign query")?;
            Ok(CampaignAction::Query {
                dir: required(rest, "--dir", "campaign query")?.to_string(),
                func: required(rest, "--func", "campaign query")?.to_string(),
            })
        }
        "mapreduce" => {
            reject_unknown_flags(
                rest,
                &[
                    "--dir",
                    "--scenarios",
                    "--seed",
                    "--profile",
                    "--retries",
                    "--processes",
                    "--transport",
                    "--worker-bin",
                    "--inject-kill",
                    "--history",
                    "--metrics",
                ],
                "campaign mapreduce",
            )?;
            let dir = required(rest, "--dir", "campaign mapreduce")?.to_string();
            let scenarios = u32::try_from(parse_u64(required(
                rest,
                "--scenarios",
                "campaign mapreduce",
            )?)?)
            .map_err(|_| CliError::Usage("--scenarios does not fit a 32-bit count".into()))?;
            if scenarios == 0 {
                return Err(CliError::Usage("--scenarios must be at least 1".into()));
            }
            let seed = match flag_value(rest, "--seed") {
                Some(s) => parse_u64(s)?,
                None => 1,
            };
            let profile = match flag_value(rest, "--profile") {
                Some(name) => Profile::from_name(name)
                    .ok_or_else(|| CliError::Usage(format!("unknown profile `{name}`")))?,
                None => Profile::Fast,
            };
            let max_retries = match flag_value(rest, "--retries") {
                Some(r) => u32::try_from(parse_u64(r)?).map_err(|_| {
                    CliError::Usage(format!("--retries {r} does not fit a 32-bit count"))
                })?,
                None => 1,
            };
            let processes = match flag_value(rest, "--processes") {
                Some(p) => {
                    let processes = parse_u64(p)? as usize;
                    if processes == 0 {
                        return Err(CliError::Usage("--processes must be at least 1".into()));
                    }
                    processes
                }
                None => 4,
            };
            let transport = match flag_value(rest, "--transport") {
                Some("process") | None => MapTransport::Process,
                Some("sim") => MapTransport::Sim,
                Some(other) => {
                    return Err(CliError::Usage(format!(
                        "unknown transport `{other}` (expected process or sim)"
                    )))
                }
            };
            let inject_kill = flag_value(rest, "--inject-kill")
                .map(|text| {
                    let (worker, request) = text.split_once(':').ok_or_else(|| {
                        CliError::Usage(format!(
                            "--inject-kill expects <worker>:<request>, got `{text}`"
                        ))
                    })?;
                    let parse = |part: &str| {
                        u32::try_from(parse_u64(part)?)
                            .map_err(|_| CliError::Usage(format!("`{part}` is out of range")))
                    };
                    Ok::<_, CliError>((parse(worker)?, parse(request)?))
                })
                .transpose()?;
            Ok(CampaignAction::Mapreduce {
                dir,
                spec: campaign::mapreduce::GridSpec {
                    scenarios,
                    seed,
                    profile,
                    max_retries,
                },
                processes,
                transport,
                worker_bin: flag_value(rest, "--worker-bin").map(str::to_string),
                inject_kill,
                history: flag_value(rest, "--history").map(str::to_string),
                metrics: flag_value(rest, "--metrics").map(str::to_string),
            })
        }
        "worker" => {
            reject_unknown_flags(rest, &["--inject-kill"], "campaign worker")?;
            let inject_kill = flag_value(rest, "--inject-kill")
                .map(|n| {
                    u32::try_from(parse_u64(n)?)
                        .map_err(|_| CliError::Usage(format!("`{n}` is out of range")))
                })
                .transpose()?;
            Ok(CampaignAction::Worker { inject_kill })
        }
        "dlq" => {
            let Some(op) = rest.first() else {
                return Err(CliError::Usage(
                    "`dramdig campaign dlq` requires list, inspect, retry or reprocess".into(),
                ));
            };
            let op = match op.as_str() {
                "list" => DlqOp::List,
                "inspect" => DlqOp::Inspect,
                "retry" => DlqOp::Retry,
                "reprocess" => DlqOp::Reprocess,
                other => {
                    return Err(CliError::Usage(format!(
                        "unknown dlq action `{other}` (expected list, inspect, retry or reprocess)"
                    )))
                }
            };
            let rest = &rest[1..];
            reject_unknown_flags(rest, &["--dir", "--job"], "campaign dlq")?;
            let job = flag_value(rest, "--job").map(str::to_string);
            if op == DlqOp::Inspect && job.is_none() {
                return Err(CliError::Usage(
                    "`dramdig campaign dlq inspect` requires --job <id>".into(),
                ));
            }
            Ok(CampaignAction::Dlq {
                dir: required(rest, "--dir", "campaign dlq")?.to_string(),
                op,
                job,
            })
        }
        other => Err(CliError::Usage(format!(
            "unknown campaign action `{other}` (expected run, resume, status, query, mapreduce, \
             worker or dlq)"
        ))),
    }
}

fn parse_registry(rest: &[String]) -> Result<RegistryAction, CliError> {
    let Some(action) = rest.first() else {
        return Err(CliError::Usage(
            "`dramdig registry` requires import, gen, query or stats".into(),
        ));
    };
    let rest = &rest[1..];
    // Shard count is only honoured when the registry directory is created;
    // reopening keeps the persisted count, so routing never changes under
    // an existing manifest.
    let shards = |rest: &[String]| -> Result<u32, CliError> {
        match flag_value(rest, "--shards") {
            Some(s) => {
                let shards = parse_u64(s)?;
                if !(1..=99).contains(&shards) {
                    return Err(CliError::Usage("--shards must be between 1 and 99".into()));
                }
                Ok(shards as u32)
            }
            None => Ok(4),
        }
    };
    match action.as_str() {
        "import" => {
            reject_unknown_flags(
                rest,
                &["--campaign", "--registry", "--shards", "--crash-after"],
                "registry import",
            )?;
            Ok(RegistryAction::Import {
                campaign_dir: required(rest, "--campaign", "registry import")?.to_string(),
                registry_dir: required(rest, "--registry", "registry import")?.to_string(),
                shards: shards(rest)?,
                crash_after: flag_value(rest, "--crash-after")
                    .map(|v| parse_u64(v).map(|v| v as usize))
                    .transpose()?,
            })
        }
        "gen" => {
            reject_unknown_flags(
                rest,
                &["--registry", "--grid", "--count", "--seed", "--shards"],
                "registry gen",
            )?;
            let grid = match flag_value(rest, "--grid") {
                None => None,
                Some(name) => Some(GridKind::from_name(name).ok_or_else(|| {
                    CliError::Usage(format!(
                        "unknown --grid `{name}` (expected quick, ci or full)"
                    ))
                })?),
            };
            let count = flag_value(rest, "--count").map(parse_u64).transpose()?;
            match (grid, count) {
                (None, None) => {
                    return Err(CliError::Usage(
                        "`dramdig registry gen` needs --grid or --count".into(),
                    ))
                }
                (Some(_), Some(_)) => {
                    return Err(CliError::Usage(
                        "--grid and --count are mutually exclusive".into(),
                    ))
                }
                (_, Some(0)) => {
                    return Err(CliError::Usage("--count must be at least 1".into()));
                }
                _ => {}
            }
            Ok(RegistryAction::Gen {
                registry_dir: required(rest, "--registry", "registry gen")?.to_string(),
                grid,
                count,
                seed: match flag_value(rest, "--seed") {
                    Some(s) => parse_u64(s)?,
                    None => 1,
                },
                shards: shards(rest)?,
            })
        }
        "query" => {
            reject_unknown_flags(
                rest,
                &["--registry", "--func", "--fingerprint", "--nearest", "--k"],
                "registry query",
            )?;
            let func = flag_value(rest, "--func").map(str::to_string);
            let fingerprint = flag_value(rest, "--fingerprint").map(str::to_string);
            let nearest = flag_value(rest, "--nearest").map(str::to_string);
            let given = [&func, &fingerprint, &nearest]
                .iter()
                .filter(|v| v.is_some())
                .count();
            if given != 1 {
                return Err(CliError::Usage(
                    "`dramdig registry query` takes exactly one of --func, --fingerprint \
                     or --nearest"
                        .into(),
                ));
            }
            let k = match flag_value(rest, "--k") {
                Some(k) => {
                    let k = parse_u64(k)? as usize;
                    if k == 0 {
                        return Err(CliError::Usage("--k must be at least 1".into()));
                    }
                    k
                }
                None => 3,
            };
            Ok(RegistryAction::Query {
                registry_dir: required(rest, "--registry", "registry query")?.to_string(),
                func,
                fingerprint,
                nearest,
                k,
            })
        }
        "stats" => {
            reject_unknown_flags(rest, &["--registry"], "registry stats")?;
            Ok(RegistryAction::Stats {
                registry_dir: required(rest, "--registry", "registry stats")?.to_string(),
            })
        }
        other => Err(CliError::Usage(format!(
            "unknown registry action `{other}` (expected import, gen, query or stats)"
        ))),
    }
}

impl Command {
    /// Parses a command line (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] describing what is missing or malformed.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let Some(sub) = args.first() else {
            return Err(CliError::Usage("no sub-command given".into()));
        };
        let rest = &args[1..];
        match sub.as_str() {
            "list-machines" => Ok(Command::ListMachines),
            "help" | "--help" | "-h" => Ok(Command::Help),
            "uncover" => {
                // A misspelled stateful flag (`--chekpoint`, `--budjet`)
                // must fail loudly: silently running without checkpoints
                // would lose all work on the next kill.
                reject_unknown_flags_with_bare(
                    rest,
                    &[
                        "--machine",
                        "--seed",
                        "--ablate",
                        "--checkpoint",
                        "--budget",
                        "--observables",
                        "--trace",
                        "--metrics",
                    ],
                    &["--resume"],
                    "uncover",
                )?;
                let machine = parse_u64(required(rest, "--machine", "uncover")?)? as u8;
                let seed = match flag_value(rest, "--seed") {
                    Some(s) => parse_u64(s)?,
                    None => 0xD16,
                };
                let ablate = match flag_value(rest, "--ablate") {
                    None => None,
                    Some("spec") => Some(Ablation::Specifications),
                    Some("sysinfo") => Some(Ablation::SystemInfo),
                    Some("empirical") => Some(Ablation::Empirical),
                    Some(other) => {
                        return Err(CliError::Usage(format!(
                            "unknown --ablate group `{other}` (expected spec, sysinfo or empirical)"
                        )))
                    }
                };
                let checkpoint = flag_value(rest, "--checkpoint").map(str::to_string);
                let resume = rest.iter().any(|a| a == "--resume");
                if resume && checkpoint.is_none() {
                    return Err(CliError::Usage(
                        "`--resume` requires `--checkpoint <dir>` naming the run to continue"
                            .into(),
                    ));
                }
                let budget = match flag_value(rest, "--budget") {
                    None => None,
                    Some(b) => {
                        let cap = parse_u64(b)?;
                        // Caught at parse time: a zero budget can only ever
                        // interrupt before calibration, which reads as a
                        // confusing mid-run failure instead of a bad flag.
                        if cap == 0 {
                            return Err(CliError::Usage(
                                "--budget must be at least 1 pair measurement \
                                 (a budget of 0 cannot run any phase)"
                                    .into(),
                            ));
                        }
                        Some(cap)
                    }
                };
                Ok(Command::Uncover {
                    machine,
                    seed,
                    ablate,
                    checkpoint,
                    resume,
                    budget,
                    observables: parse_observables(rest)?,
                    trace: flag_value(rest, "--trace").map(str::to_string),
                    metrics: flag_value(rest, "--metrics").map(str::to_string),
                })
            }
            "compare" => Ok(Command::Compare {
                machine: parse_u64(required(rest, "--machine", "compare")?)? as u8,
            }),
            "hammer" => {
                let machine = parse_u64(required(rest, "--machine", "hammer")?)? as u8;
                let tool = match flag_value(rest, "--tool") {
                    None | Some("dramdig") => HammerTool::DramDig,
                    Some("drama") => HammerTool::Drama,
                    Some("truth") => HammerTool::Truth,
                    Some(other) => {
                        return Err(CliError::Usage(format!(
                            "unknown --tool `{other}` (expected dramdig, drama or truth)"
                        )))
                    }
                };
                let tests = match flag_value(rest, "--tests") {
                    Some(t) => parse_u64(t)? as u32,
                    None => 1,
                };
                Ok(Command::Hammer {
                    machine,
                    tool,
                    tests,
                })
            }
            "decode" => Ok(Command::Decode {
                machine: parse_u64(required(rest, "--machine", "decode")?)? as u8,
                addr: parse_u64(required(rest, "--addr", "decode")?)?,
            }),
            "validate" => Ok(Command::Validate {
                funcs: required(rest, "--funcs", "validate")?.to_string(),
                rows: required(rest, "--rows", "validate")?.to_string(),
                cols: required(rest, "--cols", "validate")?.to_string(),
            }),
            "eval" => {
                reject_unknown_flags(
                    rest,
                    &[
                        "--grid",
                        "--seed",
                        "--workers",
                        "--out",
                        "--history",
                        "--observables",
                        "--trace",
                        "--metrics",
                    ],
                    "eval",
                )?;
                let grid_name = required(rest, "--grid", "eval")?;
                let grid = GridKind::from_name(grid_name).ok_or_else(|| {
                    CliError::Usage(format!(
                        "unknown --grid `{grid_name}` (expected quick, ci or full)"
                    ))
                })?;
                let seed = match flag_value(rest, "--seed") {
                    Some(s) => parse_u64(s)?,
                    None => 1,
                };
                let workers = match flag_value(rest, "--workers") {
                    Some(w) => {
                        let workers = parse_u64(w)? as usize;
                        if workers == 0 {
                            return Err(CliError::Usage("--workers must be at least 1".into()));
                        }
                        workers
                    }
                    None => 4,
                };
                Ok(Command::Eval {
                    grid,
                    seed,
                    workers,
                    out: flag_value(rest, "--out").map(str::to_string),
                    history: flag_value(rest, "--history").map(str::to_string),
                    observables: parse_observables(rest)?,
                    trace: flag_value(rest, "--trace").map(str::to_string),
                    metrics: flag_value(rest, "--metrics").map(str::to_string),
                })
            }
            "campaign" => parse_campaign(rest).map(Command::Campaign),
            "registry" => parse_registry(rest).map(Command::Registry),
            "serve" => {
                reject_unknown_flags(rest, &["--registry", "--input", "--metrics"], "serve")?;
                Ok(Command::Serve {
                    registry: required(rest, "--registry", "serve")?.to_string(),
                    input: flag_value(rest, "--input").map(str::to_string),
                    metrics: flag_value(rest, "--metrics").map(str::to_string),
                })
            }
            other => Err(CliError::Usage(format!("unknown sub-command `{other}`"))),
        }
    }
}

fn setting_for(machine: u8) -> Result<MachineSetting, CliError> {
    MachineSetting::by_number(machine).ok_or(CliError::UnknownMachine(machine))
}

/// Live progress line for `uncover`, fed by the engine's [`Observer`]
/// events. Everything goes to stderr so stdout stays a clean report that
/// scripts (and the CI kill/resume smoke) can compare byte-for-byte.
struct ProgressLine;

impl Observer for ProgressLine {
    fn on_event(&mut self, event: &EngineEvent) {
        match event {
            EngineEvent::RunStarted { phases, resumed } if *resumed > 0 => {
                eprintln!(
                    "[dramdig] resuming: {resumed}/{phases} phases restored from checkpoints"
                );
            }
            EngineEvent::PhaseStarted { phase } => eprintln!("[dramdig] {phase} ..."),
            EngineEvent::PhaseCompleted {
                phase,
                costs,
                checkpointed,
            } => eprintln!(
                "[dramdig] {phase}: {} measurements, {:.3} s{}",
                costs.measurements,
                costs.elapsed_seconds(),
                if *checkpointed { " [checkpointed]" } else { "" }
            ),
            EngineEvent::PhaseRestored { phase, costs } => eprintln!(
                "[dramdig] {phase}: restored ({} measurements already paid)",
                costs.measurements
            ),
            EngineEvent::BudgetPressure {
                spent_measurements,
                max_measurements,
                ..
            } => eprintln!(
                "[dramdig] budget pressure: {spent_measurements}/{max_measurements} measurements"
            ),
            EngineEvent::ObservableQueried { kind, cost } => eprintln!(
                "[dramdig] observable {}: {} timing + {} hammer pairs, {:.3} s",
                kind.as_str(),
                cost.timing_pairs,
                cost.hammer_pairs,
                cost.elapsed_ns as f64 / 1e9,
            ),
            // Per-batch oracle events are opt-in debugging detail
            // (`EngineOptions::fine_events`); a line per batch would drown
            // the per-phase progress.
            EngineEvent::OracleBatch { .. } => {}
            EngineEvent::Interrupted { phase, reason } => {
                eprintln!("[dramdig] interrupted before {phase}: {reason}");
            }
            EngineEvent::RunCompleted { total } => eprintln!(
                "[dramdig] done: {} measurements, {:.3} s simulated",
                total.measurements,
                total.elapsed_seconds()
            ),
            EngineEvent::RunStarted { .. } => {}
        }
    }
}

/// Writes a run's recorded telemetry to the `--trace` / `--metrics` paths.
/// A no-op when neither flag was given (`telemetry` is `None`).
fn write_telemetry(
    telemetry: Option<TelemetryObserver>,
    trace: Option<&str>,
    metrics: Option<&str>,
) -> Result<(), CliError> {
    let Some(observer) = telemetry else {
        return Ok(());
    };
    let (tracer, registry) = observer.into_parts();
    write_trace_files(&tracer, &registry, trace, metrics)
}

/// Writes a tracer's Chrome trace and a registry's snapshot to optional
/// paths. Both exports are byte-deterministic (simulated clock only).
fn write_trace_files(
    tracer: &telemetry::Tracer,
    registry: &telemetry::Registry,
    trace: Option<&str>,
    metrics: Option<&str>,
) -> Result<(), CliError> {
    if let Some(path) = trace {
        std::fs::write(path, tracer.chrome_trace())
            .map_err(|e| CliError::Tool(format!("cannot write trace to {path}: {e}")))?;
    }
    if let Some(path) = metrics {
        std::fs::write(path, registry.snapshot())
            .map_err(|e| CliError::Tool(format!("cannot write metrics to {path}: {e}")))?;
    }
    Ok(())
}

/// Reassembles a campaign's completed jobs into a trace on a virtual serial
/// timeline. The journal state's completed map is keyed (and iterated) by
/// job id, so the span order — and the exported bytes — are independent of
/// the nondeterministic completion order of the worker pool.
fn campaign_tracer(outcome: &CampaignOutcome) -> telemetry::Tracer {
    let mut tracer = telemetry::Tracer::new();
    let run = tracer.begin_with(
        telemetry::SpanKind::Run,
        "campaign",
        &[("jobs", outcome.state.completed.len() as u64)],
    );
    for (job_id, report) in &outcome.state.completed {
        let span = tracer.begin(telemetry::SpanKind::CampaignJob, job_id);
        tracer.advance_ns(report.total.elapsed_ns);
        tracer.end_with(span, &[("measurements", report.total.measurements)]);
    }
    tracer.end_with(run, &[("measurements", outcome.totals.measurements)]);
    tracer
}

/// What `uncover --checkpoint` remembers about the run besides the pipeline
/// configuration: enough to refuse a `--resume` against the wrong machine
/// or ablation.
fn uncover_meta(machine: u8, ablate: Option<Ablation>) -> String {
    let ablate = match ablate {
        None => "none",
        Some(Ablation::Specifications) => "spec",
        Some(Ablation::SystemInfo) => "sysinfo",
        Some(Ablation::Empirical) => "empirical",
    };
    format!("machine = {machine}\nablate = {ablate}\n")
}

fn probe_for(setting: &MachineSetting, seed: u64) -> SimProbe {
    let machine = SimMachine::from_setting(setting, SimConfig::default().with_seed(seed));
    SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes))
}

/// Executes a parsed command and returns its textual report.
///
/// # Errors
///
/// Returns [`CliError`] when the machine number is unknown or a library call
/// fails.
pub fn execute(command: &Command) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(usage()),
        Command::ListMachines => {
            let mut out = String::new();
            writeln!(out, "Table II machine settings:").expect("write to string");
            for setting in MachineSetting::all() {
                writeln!(out, "  {setting}").expect("write to string");
            }
            Ok(out)
        }
        Command::Uncover {
            machine,
            seed,
            ablate,
            checkpoint,
            resume,
            budget,
            observables,
            trace,
            metrics,
        } => {
            let setting = setting_for(*machine)?;
            let mut config = DramDigConfig::default().with_seed(*seed);
            let meta = uncover_meta(*machine, *ablate);
            if let Some(dir) = checkpoint {
                let store = CheckpointStore::new(dir);
                let meta_path = store.dir().join("uncover.meta");
                match std::fs::read_to_string(&meta_path) {
                    Ok(stored_meta) => {
                        if stored_meta != meta {
                            return Err(CliError::Tool(format!(
                                "{dir} holds a checkpoint for a different run \
                                 (recorded: {}; requested: {})",
                                stored_meta.replace('\n', " "),
                                meta.replace('\n', " "),
                            )));
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                        if *resume {
                            return Err(CliError::Tool(format!(
                                "{dir} holds no checkpoint to resume; run without --resume first"
                            )));
                        }
                        store.save_sidecar("uncover.meta", &meta).map_err(|e| {
                            CliError::Tool(format!("cannot prepare checkpoint dir {dir}: {e}"))
                        })?;
                    }
                    Err(e) => {
                        return Err(CliError::Tool(format!(
                            "cannot read {}: {e}",
                            meta_path.display()
                        )))
                    }
                }
                if *resume {
                    // Continue exactly the recorded run: its configuration
                    // (seed included) governs both the tool and the
                    // simulated machine.
                    config = store
                        .load_config()
                        .map_err(|e| CliError::Tool(e.to_string()))?
                        .ok_or_else(|| {
                            CliError::Tool(format!(
                                "{dir} holds no recorded configuration to resume"
                            ))
                        })?;
                }
            }
            let mut knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch))
                .with_observables(observables.clone());
            knowledge = match ablate {
                Some(Ablation::Specifications) => knowledge.without_specifications(),
                Some(Ablation::SystemInfo) => knowledge.without_system_info(),
                Some(Ablation::Empirical) => knowledge.without_empirical(),
                None => knowledge,
            };
            let mut options = EngineOptions::default();
            if let Some(dir) = checkpoint {
                options = options.with_checkpoint(dir);
            }
            if let Some(cap) = budget {
                options = options.with_budget(Budget::measurements(*cap));
            }
            let telemetry_on = trace.is_some() || metrics.is_some();
            if telemetry_on {
                // Per-batch oracle events only exist when someone records
                // them; they cost nothing otherwise.
                options = options.with_fine_events(true);
            }
            let mut probe = probe_for(&setting, config.rng_seed);
            let hammer_seed = config.rng_seed ^ 0xF11A;
            let engine = PipelineEngine::new(knowledge, config);
            let mut progress = ProgressLine;
            let mut telemetry = telemetry_on.then(TelemetryObserver::new);
            // Tee the event stream: the progress line narrates to stderr
            // while the telemetry observer (when requested) records spans.
            let mut observer = |event: &EngineEvent| {
                progress.on_event(event);
                if let Some(recorder) = telemetry.as_mut() {
                    recorder.on_event(event);
                }
            };
            let run_result = if observables.contains(&ObservableKind::FlipAdjacency) {
                // The flip channel hammers its own simulated module (the
                // hammer-friendly noise profile, seeded from the run), so
                // the timing probe's measurement stream stays untouched.
                let mut flip = FlipAdjacencyObservable::new(
                    SimMachine::from_setting(
                        &setting,
                        SimConfig::fast_rowhammer().with_seed(hammer_seed),
                    ),
                    FlipAdjacencyConfig::default(),
                );
                engine.run_with_observables(&mut probe, &options, &mut observer, &mut [&mut flip])
            } else {
                engine.run(&mut probe, &options, &mut observer)
            };
            // Written before the result is inspected: an interrupted run's
            // trace (a byte-prefix of the full run's) is evidence too.
            write_telemetry(telemetry, trace.as_deref(), metrics.as_deref())?;
            let report = match run_result {
                Ok(report) => report,
                Err(DramDigError::Interrupted { phase, reason }) if checkpoint.is_some() => {
                    let dir = checkpoint.as_deref().unwrap_or_default();
                    // The suggested command must reproduce this run exactly,
                    // ablation included, or the uncover.meta guard refuses it.
                    let ablate_flag = match ablate {
                        None => String::new(),
                        Some(Ablation::Specifications) => " --ablate spec".into(),
                        Some(Ablation::SystemInfo) => " --ablate sysinfo".into(),
                        Some(Ablation::Empirical) => " --ablate empirical".into(),
                    };
                    let mut out = String::new();
                    writeln!(out, "machine        : {setting}").expect("write to string");
                    writeln!(out, "interrupted before {phase}: {reason}").expect("write");
                    writeln!(
                        out,
                        "checkpoints saved in {dir}; continue with:\n  dramdig uncover --machine {machine}{ablate_flag} --checkpoint {dir} --resume"
                    )
                    .expect("write to string");
                    return Ok(out);
                }
                Err(e) => return Err(CliError::Tool(e.to_string())),
            };
            let mut out = String::new();
            writeln!(out, "machine        : {setting}").expect("write to string");
            writeln!(out, "{report}").expect("write to string");
            writeln!(
                out,
                "ground truth   : {} (recovered mapping {})",
                setting.mapping(),
                if report.mapping.equivalent_to(setting.mapping()) {
                    "matches"
                } else {
                    "DOES NOT match"
                }
            )
            .expect("write to string");
            Ok(out)
        }
        Command::Compare { machine } => {
            let setting = setting_for(*machine)?;
            let mut out = String::new();
            writeln!(out, "comparing tools on {setting}").expect("write to string");

            let mut probe = probe_for(&setting, 1);
            let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
            match DramDig::new(knowledge, DramDigConfig::default()).run(&mut probe) {
                Ok(r) => writeln!(
                    out,
                    "  DRAMDig    : correct={} measurements={} time={:.1}s",
                    r.mapping.equivalent_to(setting.mapping()),
                    r.total.measurements,
                    r.elapsed_seconds()
                )
                .expect("write to string"),
                Err(e) => writeln!(out, "  DRAMDig    : failed ({e})").expect("write to string"),
            }

            let mut probe = probe_for(&setting, 1);
            match Drama::new(DramaConfig::fast()).run(&mut probe, setting.system.address_bits()) {
                Ok(o) => writeln!(
                    out,
                    "  DRAMA      : bank-partition-correct={} full-mapping={} measurements={} time={:.1}s",
                    o.bank_partition_matches(setting.mapping()),
                    o.mapping.is_some(),
                    o.measurements,
                    o.elapsed_seconds()
                )
                .expect("write to string"),
                Err(e) => writeln!(out, "  DRAMA      : failed ({e})").expect("write to string"),
            }

            let mut probe = probe_for(&setting, 1);
            match Xiao::with_defaults().run(&mut probe, &setting.system) {
                Ok(o) => writeln!(
                    out,
                    "  Xiao et al.: correct={} measurements={} time={:.1}s",
                    o.matches(setting.mapping()),
                    o.measurements,
                    o.elapsed_seconds()
                )
                .expect("write to string"),
                Err(BaselineError::Stuck { reason, .. }) => {
                    writeln!(out, "  Xiao et al.: stuck ({reason})").expect("write to string")
                }
                Err(e) => {
                    writeln!(out, "  Xiao et al.: not applicable ({e})").expect("write to string")
                }
            }
            Ok(out)
        }
        Command::Hammer {
            machine,
            tool,
            tests,
        } => {
            let setting = setting_for(*machine)?;
            let view = match tool {
                HammerTool::Truth => AttackerView::from_mapping(setting.mapping()),
                HammerTool::DramDig => {
                    let mut probe = probe_for(&setting, 2);
                    let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
                    let report = DramDig::new(knowledge, DramDigConfig::default())
                        .run(&mut probe)
                        .map_err(|e| CliError::Tool(e.to_string()))?;
                    AttackerView::from_mapping(&report.mapping)
                }
                HammerTool::Drama => {
                    let mut probe = probe_for(&setting, 2);
                    let outcome = Drama::new(DramaConfig::fast())
                        .run(&mut probe, setting.system.address_bits())
                        .map_err(|e| CliError::Tool(e.to_string()))?;
                    AttackerView::new(outcome.functions, outcome.row_bits)
                }
            };
            let mut out = String::new();
            writeln!(
                out,
                "double-sided rowhammer on {} with the {:?} mapping:",
                setting.label(),
                tool
            )
            .expect("write to string");
            let mut total = 0usize;
            for test in 0..*tests {
                let mut sim = SimMachine::from_setting(
                    &setting,
                    SimConfig::fast_rowhammer().with_seed(0xCC + u64::from(test)),
                );
                let cfg = HammerConfig::timed(300 * 2_000_000, u64::from(test));
                let result = run_double_sided(&mut sim, &view, &cfg);
                total += result.flips;
                writeln!(
                    out,
                    "  test {:>2}: {:>5} flips ({} pairs, {:.0}% truly adjacent)",
                    test + 1,
                    result.flips,
                    result.pairs_attempted,
                    result.adjacency_rate() * 100.0
                )
                .expect("write to string");
            }
            writeln!(out, "  total  : {total} flips over {tests} tests").expect("write to string");
            Ok(out)
        }
        Command::Decode { machine, addr } => {
            let setting = setting_for(*machine)?;
            let mapping = setting.mapping();
            let capacity = mapping.capacity_bytes();
            if *addr >= capacity {
                return Err(CliError::Tool(format!(
                    "address {addr:#x} is beyond the {capacity:#x}-byte module"
                )));
            }
            let dram = mapping.to_dram(PhysAddr::new(*addr));
            let back = mapping
                .to_phys(dram)
                .map_err(|e| CliError::Tool(e.to_string()))?;
            Ok(format!(
                "machine {}: {:#x} -> {dram} (round-trips to {back})\n",
                setting.label(),
                addr
            ))
        }
        Command::Eval {
            grid,
            seed,
            workers,
            out,
            history,
            observables,
            trace,
            metrics,
        } => {
            let expanded = EvalGrid::new(*grid, *seed);
            let mut pool_metrics = telemetry::Registry::new();
            let outcome = if metrics.is_some() {
                run_grid_metered(&expanded, *workers, observables, &mut pool_metrics)
            } else {
                run_grid_with_observables(&expanded, *workers, observables)
            };
            let scoreboard = outcome.render_scoreboard();
            // The artifacts are written even when the gate fails below — a
            // failing CI run must still upload the evidence.
            if let Some(path) = out {
                std::fs::write(path, &scoreboard).map_err(|e| {
                    CliError::Tool(format!("cannot write scoreboard to {path}: {e}"))
                })?;
            }
            if trace.is_some() || metrics.is_some() {
                let tracer = outcome_tracer(&outcome);
                let mut registry = outcome_metrics(&outcome);
                registry.merge(&pool_metrics);
                write_trace_files(&tracer, &registry, trace.as_deref(), metrics.as_deref())?;
            }
            // Simulated time, not wall time: the line is a pure function of
            // the outcome, so same-seed runs print identical bytes.
            eprintln!("{}", summary_line(&outcome));
            let gate = outcome.gate();
            if !gate.passed() {
                return Err(CliError::Tool(format!(
                    "scenario-matrix gate FAILED:\n  {}",
                    gate.failures.join("\n  ")
                )));
            }
            // Only passing boards enter the longitudinal history; a key
            // recorded before must reproduce its line byte-for-byte or the
            // run fails as a scoreboard regression.
            if let Some(path) = history {
                let existing = match std::fs::read_to_string(path) {
                    Ok(contents) => contents,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
                    Err(e) => {
                        return Err(CliError::Tool(format!("cannot read history {path}: {e}")))
                    }
                };
                let line = dramdig_bench::eval::history_line(&outcome);
                match dramdig_bench::eval::append_history(&existing, &line) {
                    Ok(Some(updated)) => {
                        std::fs::write(path, updated).map_err(|e| {
                            CliError::Tool(format!("cannot write history {path}: {e}"))
                        })?;
                        eprintln!("[dramdig] history: recorded new run in {path}");
                    }
                    Ok(None) => {
                        eprintln!("[dramdig] history: run already recorded in {path}, unchanged");
                    }
                    Err(drift) => {
                        return Err(CliError::Tool(format!("scoreboard {drift}")));
                    }
                }
            }
            Ok(scoreboard)
        }
        Command::Campaign(action) => execute_campaign(action),
        Command::Registry(action) => execute_registry(action),
        Command::Serve {
            registry,
            input,
            metrics,
        } => execute_serve(registry, input.as_deref(), metrics.as_deref()),
        Command::Validate { funcs, rows, cols } => match parse::parse_mapping(funcs, rows, cols) {
            Ok(mapping) => Ok(format!(
                "valid mapping: {mapping}\n  banks: {}, rows per bank: {}, row size: {} bytes\n",
                mapping.num_banks(),
                mapping.num_rows(),
                mapping.row_size_bytes()
            )),
            Err(e) => Err(CliError::Tool(format!("invalid mapping: {e}"))),
        },
    }
}

fn read_campaign_spec(paths: &CampaignPaths) -> Result<CampaignSpec, CliError> {
    let text = std::fs::read_to_string(paths.spec()).map_err(|e| {
        CliError::Tool(format!(
            "cannot read {} ({e}); was this campaign started with `campaign run`?",
            paths.spec().display()
        ))
    })?;
    CampaignSpec::decode(&text).map_err(|e| CliError::Tool(format!("corrupt campaign spec: {e}")))
}

fn drive_campaign(
    dir: &str,
    spec: &CampaignSpec,
    workers: usize,
    limit: Option<usize>,
    trace: Option<&str>,
    metrics: Option<&str>,
) -> Result<String, CliError> {
    let paths = CampaignPaths::new(dir);
    // Phase checkpoints are always on for CLI campaigns: a worker killed
    // mid-pipeline resumes its job from the last phase boundary instead of
    // repaying the partition.
    let mut options = CampaignOptions::default()
        .with_workers(workers)
        .with_phase_checkpoints(true);
    if let Some(limit) = limit {
        options = options.with_max_completions(limit);
    }
    let mut pool_metrics = telemetry::Registry::new();
    let outcome = run_campaign_with_metrics(
        spec,
        &paths,
        &options,
        metrics.is_some().then_some(&mut pool_metrics),
        campaign::run_job_sim_checkpointed,
    )
    .map_err(|e| CliError::Tool(e.to_string()))?;
    if trace.is_some() || metrics.is_some() {
        write_trace_files(&campaign_tracer(&outcome), &pool_metrics, trace, metrics)?;
    }

    let mut out = String::new();
    let total = spec.jobs().len();
    writeln!(
        out,
        "campaign {dir}: {}/{total} jobs completed ({} this invocation, {} dead-lettered)",
        outcome.state.completed.len(),
        outcome.completed.len(),
        outcome.state.dead.len(),
    )
    .expect("write to string");
    for done in &outcome.completed {
        writeln!(
            out,
            "  {} (attempt {}): {}",
            done.job.id(),
            done.attempt,
            done.report.mapping
        )
        .expect("write to string");
    }
    for (job, reason) in &outcome.dead {
        writeln!(out, "  DEAD {}: {reason}", job.id()).expect("write to string");
    }
    let pending = outcome.state.pending(spec).len();
    if pending > 0 {
        writeln!(
            out,
            "  {pending} jobs still pending; continue with `dramdig campaign resume --dir {dir}`"
        )
        .expect("write to string");
    }
    writeln!(
        out,
        "store: {} distinct mappings ({})",
        outcome.store.len(),
        paths.store().display()
    )
    .expect("write to string");
    writeln!(
        out,
        "totals: {} measurements, {:.3} s simulated; fleet makespan {:.3} s at 1 machine, {:.3} s at {} machines",
        outcome.totals.measurements,
        outcome.totals.elapsed_seconds(),
        outcome.simulated_makespan(1),
        outcome.simulated_makespan(workers),
        workers,
    )
    .expect("write to string");
    Ok(out)
}

fn execute_campaign(action: &CampaignAction) -> Result<String, CliError> {
    match action {
        CampaignAction::Run {
            dir,
            spec,
            workers,
            limit,
            trace,
            metrics,
        } => {
            let paths = CampaignPaths::new(dir);
            if paths.spec().exists() {
                let existing = read_campaign_spec(&paths)?;
                if &existing != spec {
                    return Err(CliError::Tool(format!(
                        "{} already holds a different campaign; resume it or pick a new --dir",
                        dir
                    )));
                }
            } else {
                std::fs::create_dir_all(paths.dir())
                    .and_then(|()| std::fs::write(paths.spec(), spec.encode()))
                    .map_err(|e| {
                        CliError::Tool(format!("cannot persist campaign spec in {dir}: {e}"))
                    })?;
            }
            drive_campaign(
                dir,
                spec,
                *workers,
                *limit,
                trace.as_deref(),
                metrics.as_deref(),
            )
        }
        CampaignAction::Resume {
            dir,
            workers,
            limit,
        } => {
            let spec = read_campaign_spec(&CampaignPaths::new(dir))?;
            drive_campaign(dir, &spec, *workers, *limit, None, None)
        }
        CampaignAction::Status { dir } => {
            let paths = CampaignPaths::new(dir);
            let spec = read_campaign_spec(&paths)?;
            let status =
                campaign_status(&spec, &paths).map_err(|e| CliError::Tool(e.to_string()))?;
            let mut out = String::new();
            writeln!(
                out,
                "campaign {dir}: {}/{} completed, {} dead, {} pending, {} distinct mappings",
                status.completed,
                status.total_jobs,
                status.dead.len(),
                status.pending.len(),
                status.distinct_mappings,
            )
            .expect("write to string");
            for (job, attempt) in &status.pending {
                writeln!(out, "  pending {job} (next attempt {attempt})").expect("write to string");
            }
            for (job, reason) in &status.dead {
                writeln!(out, "  DEAD {job}: {reason}").expect("write to string");
            }
            Ok(out)
        }
        CampaignAction::Query { dir, func } => {
            let paths = CampaignPaths::new(dir);
            let funcs = parse::parse_functions(func)
                .map_err(|e| CliError::Tool(format!("invalid --func: {e}")))?;
            let [func] = funcs.as_slice() else {
                return Err(CliError::Tool(
                    "--func expects exactly one bank function, e.g. \"(13, 16)\"".into(),
                ));
            };
            let store = load_campaign_store(&paths)?;
            let mut out = String::new();
            let entries = store.entries_sharing(*func);
            writeln!(
                out,
                "bank function {func} appears in {} of {} stored mappings",
                entries.len(),
                store.len(),
            )
            .expect("write to string");
            // One span scan: the machine set falls out of the matching
            // entries (what MappingStore::machines_sharing would recompute).
            let machines: std::collections::BTreeSet<&str> =
                entries.iter().flat_map(|entry| entry.machines()).collect();
            for entry in &entries {
                let sources: Vec<String> = entry.sources.iter().map(|s| s.to_string()).collect();
                writeln!(out, "  {}", entry.mapping).expect("write to string");
                writeln!(out, "    recovered by {}", sources.join(", ")).expect("write to string");
            }
            if machines.is_empty() {
                writeln!(out, "no machine shares it").expect("write to string");
            } else {
                let machines: Vec<&str> = machines.into_iter().collect();
                writeln!(out, "machines sharing it: {}", machines.join(", "))
                    .expect("write to string");
            }
            Ok(out)
        }
        CampaignAction::Mapreduce {
            dir,
            spec,
            processes,
            transport,
            worker_bin,
            inject_kill,
            history,
            metrics,
        } => execute_mapreduce(
            dir,
            spec,
            *processes,
            *transport,
            worker_bin.as_deref(),
            *inject_kill,
            history.as_deref(),
            metrics.as_deref(),
        ),
        CampaignAction::Worker { inject_kill } => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            campaign::mapreduce::run_worker(stdin.lock(), stdout.lock(), *inject_kill)
                .map_err(CliError::Tool)?;
            Ok(String::new())
        }
        CampaignAction::Dlq { dir, op, job } => execute_dlq(dir, *op, job.as_deref()),
    }
}

/// Reads the grid spec persisted in a mapreduce campaign directory.
fn read_grid_spec(paths: &CampaignPaths) -> Result<campaign::mapreduce::GridSpec, CliError> {
    let path = paths.dir().join("grid.spec");
    let text = std::fs::read_to_string(&path).map_err(|e| {
        CliError::Tool(format!(
            "cannot read {} ({e}); was this grid started with `campaign mapreduce`?",
            path.display()
        ))
    })?;
    campaign::mapreduce::GridSpec::decode(&text)
        .map_err(|e| CliError::Tool(format!("corrupt grid spec: {e}")))
}

#[allow(clippy::too_many_arguments)]
fn execute_mapreduce(
    dir: &str,
    spec: &campaign::mapreduce::GridSpec,
    processes: usize,
    transport: MapTransport,
    worker_bin: Option<&str>,
    inject_kill: Option<(u32, u32)>,
    history: Option<&str>,
    metrics: Option<&str>,
) -> Result<String, CliError> {
    use campaign::mapreduce::{ProcessTransport, SimTransport, WorkerTransport};

    let paths = CampaignPaths::new(dir);
    let spec_path = paths.dir().join("grid.spec");
    if spec_path.exists() {
        let existing = read_grid_spec(&paths)?;
        if &existing != spec {
            return Err(CliError::Tool(format!(
                "{dir} already holds a different grid; resume it or pick a new --dir"
            )));
        }
    } else {
        std::fs::create_dir_all(paths.dir())
            .and_then(|()| std::fs::write(&spec_path, spec.encode()))
            .map_err(|e| CliError::Tool(format!("cannot persist grid spec in {dir}: {e}")))?;
    }

    let transports: Vec<Box<dyn WorkerTransport>> = match transport {
        MapTransport::Sim => (0..processes)
            .map(|i| {
                let sim = match inject_kill {
                    Some((worker, request)) if worker as usize == i => {
                        SimTransport::killed_at(request)
                    }
                    _ => SimTransport::new(),
                };
                Box::new(sim) as Box<dyn WorkerTransport>
            })
            .collect(),
        MapTransport::Process => {
            let bin = match worker_bin {
                Some(path) => std::path::PathBuf::from(path),
                None => std::env::current_exe()
                    .map_err(|e| CliError::Tool(format!("cannot locate own binary: {e}")))?,
            };
            (0..processes)
                .map(|i| {
                    let extra = match inject_kill {
                        Some((worker, request)) if worker as usize == i => {
                            vec!["--inject-kill".to_string(), request.to_string()]
                        }
                        _ => Vec::new(),
                    };
                    ProcessTransport::spawn(&bin, &extra)
                        .map(|t| Box::new(t) as Box<dyn WorkerTransport>)
                })
                .collect::<std::io::Result<Vec<_>>>()
                .map_err(|e| CliError::Tool(format!("cannot spawn workers: {e}")))?
        }
    };

    let mut pool_metrics = telemetry::Registry::new();
    let outcome = campaign::mapreduce::run_mapreduce(
        spec,
        &paths,
        transports,
        metrics.is_some().then_some(&mut pool_metrics),
    )
    .map_err(|e| CliError::Tool(e.to_string()))?;
    if metrics.is_some() {
        write_trace_files(&telemetry::Tracer::new(), &pool_metrics, None, metrics)?;
    }

    if let Some(path) = history {
        let existing = match std::fs::read_to_string(path) {
            Ok(contents) => contents,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(CliError::Tool(format!("cannot read history {path}: {e}"))),
        };
        let line = campaign::mapreduce::grid_history_line(spec, &outcome);
        match dramdig_bench::eval::append_history(&existing, &line) {
            Ok(Some(updated)) => {
                std::fs::write(path, updated)
                    .map_err(|e| CliError::Tool(format!("cannot write history {path}: {e}")))?;
                eprintln!("[dramdig] history: recorded new grid in {path}");
            }
            Ok(None) => {
                eprintln!("[dramdig] history: grid already recorded in {path}, unchanged");
            }
            Err(drift) => return Err(CliError::Tool(format!("scoreboard {drift}"))),
        }
    }

    let pending =
        spec.scenarios as usize - outcome.state.completed.len() - outcome.state.dead.len();
    let mut out = String::new();
    writeln!(
        out,
        "mapreduce {dir}: {}/{} jobs completed ({} this invocation, {} dead-lettered, {} pending)",
        outcome.state.completed.len(),
        spec.scenarios,
        outcome.completed_now,
        outcome.state.dead.len(),
        pending,
    )
    .expect("write to string");
    if pending > 0 {
        writeln!(
            out,
            "  continue with `dramdig campaign mapreduce --dir {dir} --scenarios {}`",
            spec.scenarios
        )
        .expect("write to string");
    }
    writeln!(
        out,
        "store: {} distinct mappings ({})",
        outcome.store.len(),
        paths.store().display()
    )
    .expect("write to string");
    writeln!(
        out,
        "scoreboard: fnv1a:{:016x} ({})",
        campaign::mapreduce::fingerprint(&outcome.scoreboard),
        paths.dir().join("SCOREBOARD.txt").display()
    )
    .expect("write to string");
    if !outcome.state.dead.is_empty() {
        writeln!(
            out,
            "dead letters: inspect with `dramdig campaign dlq list --dir {dir}`"
        )
        .expect("write to string");
    }
    Ok(out)
}

fn execute_dlq(dir: &str, op: DlqOp, job: Option<&str>) -> Result<String, CliError> {
    let paths = CampaignPaths::new(dir);
    let records = campaign::mapreduce::read_merged_journal(&paths)
        .map_err(|e| CliError::Tool(e.to_string()))?;
    let state = campaign::JournalState::replay(&records);
    let letters = campaign::dead_letters(&state);
    match op {
        DlqOp::List => {
            let mut out = String::new();
            writeln!(out, "dead-letter queue of {dir}: {} job(s)", letters.len())
                .expect("write to string");
            for letter in &letters {
                let reason = letter.reason.replace('\n', " / ");
                writeln!(
                    out,
                    "  {} attempts={} reason={}",
                    letter.job, letter.attempts, reason
                )
                .expect("write to string");
            }
            Ok(out)
        }
        DlqOp::Inspect => {
            let id = job.expect("parser enforces --job for inspect");
            let letter = letters.iter().find(|l| l.job == id).ok_or_else(|| {
                CliError::Tool(format!(
                    "job `{id}` is not dead-lettered (see `campaign dlq list`)"
                ))
            })?;
            let mut out = String::new();
            writeln!(out, "job: {}", letter.job).expect("write to string");
            writeln!(out, "attempts: {}", letter.attempts).expect("write to string");
            writeln!(
                out,
                "next retry attempt: {}",
                state.next_attempt(&letter.job)
            )
            .expect("write to string");
            writeln!(out, "reason:\n{}", letter.reason).expect("write to string");
            Ok(out)
        }
        DlqOp::Retry | DlqOp::Reprocess => {
            let mode = match op {
                DlqOp::Retry => campaign::RequeueMode::Retry,
                _ => campaign::RequeueMode::Reprocess,
            };
            // Requeue records must land *after* the dead records they revive:
            // fold any worker journal shards into the top-level journal first.
            campaign::mapreduce::compact_journals(&paths)
                .map_err(|e| CliError::Tool(e.to_string()))?;
            let requeued = campaign::requeue(&paths.journal(), &state, mode, job)
                .map_err(|e| CliError::Tool(e.to_string()))?;
            // dlq.txt mirrors the journal: rewrite it from the post-requeue state.
            let records = campaign::read_journal(&paths.journal())
                .map_err(|e| CliError::Tool(e.to_string()))?;
            campaign::write_dlq(&paths.dlq(), &campaign::JournalState::replay(&records))
                .map_err(|e| CliError::Tool(e.to_string()))?;
            let mut out = String::new();
            writeln!(
                out,
                "requeued {} job(s) for {}:",
                requeued.len(),
                mode.as_str()
            )
            .expect("write to string");
            for id in &requeued {
                writeln!(out, "  {id}").expect("write to string");
            }
            writeln!(
                out,
                "run `dramdig campaign mapreduce --dir {dir} ...` (or `campaign resume`) to drain them"
            )
            .expect("write to string");
            Ok(out)
        }
    }
}

/// Rebuilds a campaign's mapping store from its journal — the durable
/// record of truth, exactly what `campaign status` counts — so a kill
/// between a journaled completion and the store rewrite never makes the
/// commands disagree. Only when the journal cannot be replayed does a
/// persisted `store.txt` answer instead.
fn load_campaign_store(paths: &CampaignPaths) -> Result<MappingStore, CliError> {
    let rebuilt = read_campaign_spec(paths).and_then(|spec| {
        let records =
            campaign::read_journal(&paths.journal()).map_err(|e| CliError::Tool(e.to_string()))?;
        Ok(campaign::store_from_state(
            &campaign::JournalState::replay(&records),
            &spec,
        ))
    });
    match rebuilt {
        Ok(store) => Ok(store),
        Err(journal_error) => std::fs::read_to_string(paths.store())
            .ok()
            .and_then(|text| MappingStore::decode(&text).ok())
            .ok_or(journal_error),
    }
}

/// Opens (or creates, with `shards`) a registry directory and appends the
/// not-yet-present `(mapping, source)` attributions from `records`,
/// optionally crashing mid-append for the CI recovery smoke. Returns the
/// shared report text both `registry import` and `registry gen` print.
fn append_to_registry(
    registry_dir: &str,
    shards: u32,
    records: Vec<registry::Record>,
    crash_after: Option<usize>,
    corpus: &str,
) -> Result<String, CliError> {
    let mut disk = registry::DiskRegistry::open_or_create(registry_dir, shards)
        .map_err(|e| CliError::Tool(format!("cannot open registry {registry_dir}: {e}")))?;
    let existing = disk.load().map_err(|e| CliError::Tool(e.to_string()))?;
    let offered = records.len();
    // Skip attributions the registry already holds so a retried import
    // appends nothing instead of duplicate records.
    let fresh: Vec<registry::Record> = records
        .into_iter()
        .filter(|r| {
            existing
                .lookup(r.fingerprint)
                .is_none_or(|entry| !entry.sources.contains(&r.source))
        })
        .collect();
    let report = disk
        .append_with_fault(&fresh, crash_after)
        .map_err(|e| CliError::Tool(format!("append to {registry_dir} failed: {e}")))?;
    let mem = disk.load().map_err(|e| CliError::Tool(e.to_string()))?;
    let stats = disk.stats().map_err(|e| CliError::Tool(e.to_string()))?;
    let mut out = String::new();
    writeln!(
        out,
        "appended {} of {} {corpus} records to {registry_dir} ({} already present)",
        report.records_appended,
        offered,
        offered - fresh.len(),
    )
    .expect("write to string");
    writeln!(
        out,
        "registry now: {} entries, {} records in {} segments across {} shards",
        mem.len(),
        stats.records,
        stats.segments,
        stats.shards,
    )
    .expect("write to string");
    Ok(out)
}

fn execute_registry(action: &RegistryAction) -> Result<String, CliError> {
    match action {
        RegistryAction::Import {
            campaign_dir,
            registry_dir,
            shards,
            crash_after,
        } => {
            let store = load_campaign_store(&CampaignPaths::new(campaign_dir))?;
            append_to_registry(
                registry_dir,
                *shards,
                store.records(),
                *crash_after,
                "campaign",
            )
        }
        RegistryAction::Gen {
            registry_dir,
            grid,
            count,
            seed,
            shards,
        } => {
            let records: Vec<registry::Record> = match (grid, count) {
                (Some(grid), None) => EvalGrid::new(*grid, *seed)
                    .scenarios
                    .iter()
                    .map(|scenario| {
                        registry::Record::new(
                            scenario.machine.mapping(),
                            registry::Source::new(
                                scenario.machine.label.clone(),
                                format!("gen-{}", scenario.id()),
                            ),
                        )
                    })
                    .collect(),
                (None, Some(count)) => (0..*count)
                    .map(|i| {
                        let machine = dram_model::MachineGen::new(seed.wrapping_add(i))
                            .generate(dram_model::MachineClass::InScope);
                        registry::Record::new(
                            machine.mapping(),
                            registry::Source::new(machine.label.clone(), "gen-inscope"),
                        )
                    })
                    .collect(),
                // Parsing enforces exactly one corpus source.
                _ => unreachable!("parse_registry enforces --grid xor --count"),
            };
            append_to_registry(registry_dir, *shards, records, None, "generated")
        }
        RegistryAction::Query {
            registry_dir,
            func,
            fingerprint,
            nearest,
            k,
        } => {
            let shared = registry::SharedRegistry::open(registry_dir)
                .map_err(|e| CliError::Tool(format!("cannot open registry {registry_dir}: {e}")))?;
            let snapshot = shared.snapshot();
            let mut out = String::new();
            if let Some(func) = func {
                let funcs = parse::parse_functions(func)
                    .map_err(|e| CliError::Tool(format!("invalid --func: {e}")))?;
                let [func] = funcs.as_slice() else {
                    return Err(CliError::Tool(
                        "--func expects exactly one bank function, e.g. \"(13, 16)\"".into(),
                    ));
                };
                let (entries, cost) = snapshot.mem.entries_sharing_costed(*func);
                writeln!(
                    out,
                    "bank function {func} appears in {} of {} registry entries \
                     ({} candidates examined)",
                    entries.len(),
                    snapshot.mem.len(),
                    cost.candidates,
                )
                .expect("write to string");
                let mut machines = std::collections::BTreeSet::new();
                for entry in &entries {
                    let entry_machines = entry.machines();
                    writeln!(
                        out,
                        "entry = {:016x} machines = {}",
                        entry.fingerprint,
                        entry_machines
                            .iter()
                            .copied()
                            .collect::<Vec<_>>()
                            .join(", "),
                    )
                    .expect("write to string");
                    machines.extend(entry_machines);
                }
                if machines.is_empty() {
                    writeln!(out, "no machine shares it").expect("write to string");
                } else {
                    writeln!(
                        out,
                        "machines sharing it: {}",
                        machines.into_iter().collect::<Vec<_>>().join(", ")
                    )
                    .expect("write to string");
                }
            } else if let Some(fingerprint) = fingerprint {
                let parsed = u64::from_str_radix(fingerprint, 16).map_err(|e| {
                    CliError::Tool(format!("invalid --fingerprint `{fingerprint}`: {e}"))
                })?;
                match snapshot.mem.lookup(parsed) {
                    Some(entry) => {
                        let (funcs, rows, cols) = parse::render_mapping(&entry.mapping);
                        writeln!(out, "fingerprint {parsed:016x}: found").expect("write to string");
                        writeln!(out, "funcs = {funcs}").expect("write to string");
                        writeln!(out, "rows = {rows}").expect("write to string");
                        writeln!(out, "cols = {cols}").expect("write to string");
                        let sources: Vec<String> =
                            entry.sources.iter().map(|s| s.to_string()).collect();
                        writeln!(out, "sources = {}", sources.join(", ")).expect("write to string");
                    }
                    None => {
                        writeln!(out, "fingerprint {parsed:016x}: not found")
                            .expect("write to string");
                    }
                }
            } else if let Some(nearest) = nearest {
                let funcs = parse::parse_functions(nearest)
                    .map_err(|e| CliError::Tool(format!("invalid --nearest: {e}")))?;
                if funcs.is_empty() {
                    return Err(CliError::Tool("--nearest names no functions".into()));
                }
                let (hits, _cost) = snapshot.mem.nearest(&funcs, *k);
                let masks: Vec<u64> = funcs.iter().map(|f| f.mask()).collect();
                let rank = dram_model::gf2::bitslice::reduced_row_basis(&masks).len();
                writeln!(out, "nearest k={k} to partial of rank {rank}").expect("write to string");
                for hit in &hits {
                    let machines = snapshot
                        .mem
                        .lookup(hit.fingerprint)
                        .map(|e| e.machines().iter().copied().collect::<Vec<_>>().join(","))
                        .unwrap_or_default();
                    writeln!(
                        out,
                        "hit = {:016x} contained={}/{} rank={} machines={machines}",
                        hit.fingerprint, hit.contained, hit.partial_rank, hit.rank,
                    )
                    .expect("write to string");
                }
                writeln!(out, "hits = {}", hits.len()).expect("write to string");
            }
            Ok(out)
        }
        RegistryAction::Stats { registry_dir } => {
            let shared = registry::SharedRegistry::open(registry_dir)
                .map_err(|e| CliError::Tool(format!("cannot open registry {registry_dir}: {e}")))?;
            let snapshot = shared.snapshot();
            let stats = shared.stats().map_err(|e| CliError::Tool(e.to_string()))?;
            let mut out = String::new();
            writeln!(
                out,
                "registry {registry_dir}: {} entries, {} records in {} segments \
                 across {} shards (generation {})",
                snapshot.mem.len(),
                stats.records,
                stats.segments,
                stats.shards,
                snapshot.generation,
            )
            .expect("write to string");
            if stats.orphans.is_empty() {
                writeln!(out, "orphans: none").expect("write to string");
            } else {
                writeln!(out, "orphans: {}", stats.orphans.join(", ")).expect("write to string");
            }
            Ok(out)
        }
    }
}

/// Runs a `dramdig serve` session: request lines from `--input` (or
/// stdin), byte-deterministic responses on stdout, wall-clock latency only
/// in the optional `--metrics` sidecar.
fn execute_serve(
    registry_dir: &str,
    input: Option<&str>,
    metrics_path: Option<&str>,
) -> Result<String, CliError> {
    let shared = registry::SharedRegistry::open(registry_dir)
        .map_err(|e| CliError::Tool(format!("cannot open registry {registry_dir}: {e}")))?;
    let requests = match input {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| CliError::Tool(format!("cannot read {path}: {e}")))?,
        None => {
            use std::io::Read as _;
            let mut text = String::new();
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|e| CliError::Tool(format!("cannot read stdin: {e}")))?;
            text
        }
    };
    let mut metrics = telemetry::Registry::new();
    let out = registry::serve_text(&requests, &shared, &mut metrics)
        .map_err(|e| CliError::Tool(e.to_string()))?;
    if let Some(path) = metrics_path {
        std::fs::write(path, metrics.snapshot())
            .map_err(|e| CliError::Tool(format!("cannot write metrics to {path}: {e}")))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_every_sub_command() {
        assert_eq!(
            Command::parse(&args(&["list-machines"])).unwrap(),
            Command::ListMachines
        );
        assert_eq!(Command::parse(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(
            Command::parse(&args(&["uncover", "--machine", "4", "--seed", "9"])).unwrap(),
            Command::Uncover {
                trace: None,
                metrics: None,
                machine: 4,
                seed: 9,
                ablate: None,
                checkpoint: None,
                resume: false,
                budget: None,
                observables: vec![ObservableKind::ConflictTiming],
            }
        );
        assert_eq!(
            Command::parse(&args(&["uncover", "--machine", "4", "--ablate", "spec"])).unwrap(),
            Command::Uncover {
                trace: None,
                metrics: None,
                machine: 4,
                seed: 0xD16,
                ablate: Some(Ablation::Specifications),
                checkpoint: None,
                resume: false,
                budget: None,
                observables: vec![ObservableKind::ConflictTiming],
            }
        );
        assert_eq!(
            Command::parse(&args(&["compare", "--machine", "2"])).unwrap(),
            Command::Compare { machine: 2 }
        );
        assert_eq!(
            Command::parse(&args(&[
                "hammer",
                "--machine",
                "1",
                "--tool",
                "drama",
                "--tests",
                "3"
            ]))
            .unwrap(),
            Command::Hammer {
                machine: 1,
                tool: HammerTool::Drama,
                tests: 3
            }
        );
        assert_eq!(
            Command::parse(&args(&["decode", "--machine", "6", "--addr", "0x1f00"])).unwrap(),
            Command::Decode {
                machine: 6,
                addr: 0x1f00
            }
        );
        assert!(matches!(
            Command::parse(&args(&[
                "validate", "--funcs", "(6)", "--rows", "1~2", "--cols", "0"
            ])),
            Ok(Command::Validate { .. })
        ));
    }

    #[test]
    fn rejects_malformed_command_lines() {
        assert!(Command::parse(&[]).is_err());
        assert!(Command::parse(&args(&["frobnicate"])).is_err());
        assert!(Command::parse(&args(&["uncover"])).is_err());
        assert!(Command::parse(&args(&["uncover", "--machine", "four"])).is_err());
        assert!(
            Command::parse(&args(&["uncover", "--machine", "4", "--ablate", "magic"])).is_err()
        );
        assert!(Command::parse(&args(&["hammer", "--machine", "1", "--tool", "hope"])).is_err());
        assert!(Command::parse(&args(&["decode", "--machine", "1"])).is_err());
    }

    #[test]
    fn list_machines_mentions_all_nine() {
        let out = execute(&Command::ListMachines).unwrap();
        for n in 1..=9 {
            assert!(out.contains(&format!("No.{n}")), "{out}");
        }
    }

    #[test]
    fn decode_round_trips_and_validates_range() {
        let out = execute(&Command::Decode {
            machine: 4,
            addr: 0x1234_5678,
        })
        .unwrap();
        assert!(out.contains("bank"));
        assert!(execute(&Command::Decode {
            machine: 4,
            addr: u64::MAX
        })
        .is_err());
        assert!(execute(&Command::Decode {
            machine: 42,
            addr: 0
        })
        .is_err());
    }

    #[test]
    fn validate_accepts_table_ii_and_rejects_garbage() {
        let ok = execute(&Command::Validate {
            funcs: "(13, 16), (14, 17), (15, 18)".into(),
            rows: "16~31".into(),
            cols: "0~12".into(),
        })
        .unwrap();
        assert!(ok.contains("valid mapping"));
        assert!(ok.contains("banks: 8"));
        assert!(execute(&Command::Validate {
            funcs: "(13, 16)".into(),
            rows: "16~31".into(),
            cols: "0~12".into(),
        })
        .is_err());
    }

    #[test]
    fn uncover_runs_on_a_small_machine() {
        let out = execute(&Command::Uncover {
            trace: None,
            metrics: None,
            machine: 4,
            seed: 1,
            ablate: None,
            checkpoint: None,
            resume: false,
            budget: None,
            observables: vec![ObservableKind::ConflictTiming],
        })
        .unwrap();
        assert!(out.contains("matches"));
        assert!(out.contains("recovered mapping"));
    }

    #[test]
    fn usage_mentions_every_sub_command() {
        let text = usage();
        for cmd in [
            "uncover",
            "compare",
            "hammer",
            "decode",
            "validate",
            "eval",
            "list-machines",
            "campaign run",
            "campaign resume",
            "campaign status",
            "campaign query",
            "campaign mapreduce",
            "campaign worker",
            "campaign dlq",
            "registry import",
            "registry gen",
            "registry query",
            "registry stats",
            "serve",
        ] {
            assert!(text.contains(cmd), "usage must mention `{cmd}`");
        }
    }

    #[test]
    fn registry_and_serve_parse() {
        assert_eq!(
            Command::parse(&args(&[
                "registry",
                "import",
                "--campaign",
                "t2",
                "--registry",
                "reg"
            ]))
            .unwrap(),
            Command::Registry(RegistryAction::Import {
                campaign_dir: "t2".into(),
                registry_dir: "reg".into(),
                shards: 4,
                crash_after: None,
            })
        );
        assert_eq!(
            Command::parse(&args(&[
                "registry",
                "import",
                "--campaign",
                "t2",
                "--registry",
                "reg",
                "--shards",
                "7",
                "--crash-after",
                "1",
            ]))
            .unwrap(),
            Command::Registry(RegistryAction::Import {
                campaign_dir: "t2".into(),
                registry_dir: "reg".into(),
                shards: 7,
                crash_after: Some(1),
            })
        );
        assert_eq!(
            Command::parse(&args(&[
                "registry",
                "gen",
                "--registry",
                "reg",
                "--grid",
                "ci"
            ]))
            .unwrap(),
            Command::Registry(RegistryAction::Gen {
                registry_dir: "reg".into(),
                grid: Some(GridKind::Ci),
                count: None,
                seed: 1,
                shards: 4,
            })
        );
        assert_eq!(
            Command::parse(&args(&[
                "registry",
                "gen",
                "--registry",
                "reg",
                "--count",
                "12",
                "--seed",
                "5"
            ]))
            .unwrap(),
            Command::Registry(RegistryAction::Gen {
                registry_dir: "reg".into(),
                grid: None,
                count: Some(12),
                seed: 5,
                shards: 4,
            })
        );
        assert_eq!(
            Command::parse(&args(&[
                "registry",
                "query",
                "--registry",
                "reg",
                "--func",
                "(13, 16)"
            ]))
            .unwrap(),
            Command::Registry(RegistryAction::Query {
                registry_dir: "reg".into(),
                func: Some("(13, 16)".into()),
                fingerprint: None,
                nearest: None,
                k: 3,
            })
        );
        assert_eq!(
            Command::parse(&args(&[
                "registry",
                "query",
                "--registry",
                "reg",
                "--nearest",
                "(13, 16)",
                "--k",
                "2"
            ]))
            .unwrap(),
            Command::Registry(RegistryAction::Query {
                registry_dir: "reg".into(),
                func: None,
                fingerprint: None,
                nearest: Some("(13, 16)".into()),
                k: 2,
            })
        );
        assert_eq!(
            Command::parse(&args(&["registry", "stats", "--registry", "reg"])).unwrap(),
            Command::Registry(RegistryAction::Stats {
                registry_dir: "reg".into(),
            })
        );
        assert_eq!(
            Command::parse(&args(&[
                "serve",
                "--registry",
                "reg",
                "--input",
                "q.txt",
                "--metrics",
                "m.txt"
            ]))
            .unwrap(),
            Command::Serve {
                registry: "reg".into(),
                input: Some("q.txt".into()),
                metrics: Some("m.txt".into()),
            }
        );
        // Malformed registry command lines fail loudly.
        assert!(Command::parse(&args(&["registry"])).is_err());
        assert!(Command::parse(&args(&["registry", "frobnicate"])).is_err());
        assert!(Command::parse(&args(&["registry", "gen", "--registry", "reg"])).is_err());
        assert!(Command::parse(&args(&[
            "registry",
            "gen",
            "--registry",
            "reg",
            "--grid",
            "ci",
            "--count",
            "3"
        ]))
        .is_err());
        assert!(Command::parse(&args(&[
            "registry",
            "gen",
            "--registry",
            "reg",
            "--count",
            "0"
        ]))
        .is_err());
        assert!(Command::parse(&args(&[
            "registry",
            "import",
            "--campaign",
            "t2",
            "--registry",
            "reg",
            "--shards",
            "0"
        ]))
        .is_err());
        assert!(Command::parse(&args(&["registry", "query", "--registry", "reg"])).is_err());
        assert!(Command::parse(&args(&[
            "registry",
            "query",
            "--registry",
            "reg",
            "--func",
            "(1)",
            "--fingerprint",
            "00",
        ]))
        .is_err());
        assert!(Command::parse(&args(&["serve"])).is_err());
        assert!(Command::parse(&args(&["serve", "--registry", "reg", "--port", "1"])).is_err());
    }

    #[test]
    fn eval_parses_and_rejects_bad_flags() {
        assert_eq!(
            Command::parse(&args(&["eval", "--grid", "ci"])).unwrap(),
            Command::Eval {
                trace: None,
                metrics: None,
                grid: GridKind::Ci,
                seed: 1,
                workers: 4,
                out: None,
                history: None,
                observables: vec![ObservableKind::ConflictTiming],
            }
        );
        assert_eq!(
            Command::parse(&args(&[
                "eval",
                "--grid",
                "quick",
                "--seed",
                "9",
                "--workers",
                "2",
                "--out",
                "sb.txt",
                "--history",
                "hist.txt"
            ]))
            .unwrap(),
            Command::Eval {
                trace: None,
                metrics: None,
                grid: GridKind::Quick,
                seed: 9,
                workers: 2,
                out: Some("sb.txt".into()),
                history: Some("hist.txt".into()),
                observables: vec![ObservableKind::ConflictTiming],
            }
        );
        assert!(Command::parse(&args(&["eval"])).is_err());
        assert!(Command::parse(&args(&["eval", "--grid", "huge"])).is_err());
        assert!(Command::parse(&args(&["eval", "--grid", "ci", "--workers", "0"])).is_err());
        assert!(Command::parse(&args(&["eval", "--grid", "ci", "--grids", "x"])).is_err());
    }

    #[test]
    fn observables_flag_parses_and_budget_zero_is_rejected_up_front() {
        // The channel list parses on both sub-commands, deduplicated and
        // order-preserving.
        let both = vec![
            ObservableKind::ConflictTiming,
            ObservableKind::FlipAdjacency,
        ];
        match Command::parse(&args(&[
            "eval",
            "--grid",
            "ci",
            "--observables",
            "timing,flip-adjacency,timing",
        ]))
        .unwrap()
        {
            Command::Eval { observables, .. } => assert_eq!(observables, both),
            other => panic!("parsed {other:?}"),
        }
        match Command::parse(&args(&[
            "uncover",
            "--machine",
            "4",
            "--observables",
            "flip-adjacency",
        ]))
        .unwrap()
        {
            Command::Uncover { observables, .. } => {
                assert_eq!(observables, vec![ObservableKind::FlipAdjacency]);
            }
            other => panic!("parsed {other:?}"),
        }
        // Unknown channels and empty lists are usage errors naming the
        // known channels.
        let err = Command::parse(&args(&["eval", "--grid", "ci", "--observables", "psychic"]))
            .unwrap_err();
        assert!(err.to_string().contains("flip-adjacency"), "{err}");
        assert!(Command::parse(&args(&["eval", "--grid", "ci", "--observables", ","])).is_err());

        // `--budget 0` can never run a phase: rejected at parse time with a
        // clear message instead of surfacing as a mid-run interruption.
        let err =
            Command::parse(&args(&["uncover", "--machine", "4", "--budget", "0"])).unwrap_err();
        assert!(
            matches!(&err, CliError::Usage(msg) if msg.contains("at least 1")),
            "{err}"
        );
        assert!(Command::parse(&args(&["uncover", "--machine", "4", "--budget", "1"])).is_ok());
    }

    #[test]
    fn eval_quick_grid_writes_a_deterministic_scoreboard() {
        let out_a = std::env::temp_dir().join(format!("dramdig-eval-a-{}", std::process::id()));
        let out_b = std::env::temp_dir().join(format!("dramdig-eval-b-{}", std::process::id()));
        let hist = std::env::temp_dir().join(format!("dramdig-eval-hist-{}", std::process::id()));
        let run = |path: &std::path::Path, workers: usize| {
            execute(&Command::Eval {
                trace: None,
                metrics: None,
                grid: GridKind::Quick,
                seed: 1,
                workers,
                out: Some(path.to_str().unwrap().to_string()),
                history: Some(hist.to_str().unwrap().to_string()),
                observables: vec![ObservableKind::ConflictTiming],
            })
            .unwrap()
        };
        let stdout_a = run(&out_a, 4);
        let stdout_b = run(&out_b, 1);
        let file_a = std::fs::read_to_string(&out_a).unwrap();
        let file_b = std::fs::read_to_string(&out_b).unwrap();
        assert_eq!(file_a, file_b, "scoreboard must be byte-identical");
        assert_eq!(stdout_a, file_a);
        assert_eq!(stdout_b, file_b);
        assert!(file_a.contains("gate = PASS"), "{file_a}");
        // The second identical run must not duplicate the history line.
        let history = std::fs::read_to_string(&hist).unwrap();
        assert_eq!(history.lines().count(), 1, "{history}");
        assert!(
            history.starts_with("grid=quick seed=1 observables=timing | gate=PASS"),
            "{history}"
        );
        std::fs::remove_file(&out_a).unwrap();
        std::fs::remove_file(&out_b).unwrap();
        std::fs::remove_file(&hist).unwrap();
    }

    #[test]
    fn eval_telemetry_artifacts_are_byte_identical_across_runs() {
        let base = std::env::temp_dir().join(format!("dramdig-eval-telem-{}", std::process::id()));
        let path = |name: &str| base.join(name).to_str().unwrap().to_string();
        std::fs::create_dir_all(&base).unwrap();
        let run = |tag: &str, workers: usize| {
            execute(&Command::Eval {
                grid: GridKind::Quick,
                seed: 1,
                workers,
                out: None,
                history: None,
                observables: vec![ObservableKind::ConflictTiming],
                trace: Some(path(&format!("{tag}.json"))),
                metrics: Some(path(&format!("{tag}.txt"))),
            })
            .unwrap()
        };
        run("a", 4);
        run("b", 1);
        let trace_a = std::fs::read_to_string(base.join("a.json")).unwrap();
        let trace_b = std::fs::read_to_string(base.join("b.json")).unwrap();
        assert_eq!(trace_a, trace_b, "trace must not depend on worker count");
        let metrics_a = std::fs::read_to_string(base.join("a.txt")).unwrap();
        let metrics_b = std::fs::read_to_string(base.join("b.txt")).unwrap();
        assert_eq!(metrics_a, metrics_b, "metrics must not depend on workers");
        assert!(trace_a.starts_with("[\n"), "{trace_a}");
        assert!(trace_a.contains("\"cat\":\"eval_cell\""), "{trace_a}");
        // Pool counters merged in next to the outcome-derived ones.
        assert!(
            metrics_a.contains("counter eval_cells_total 32"),
            "{metrics_a}"
        );
        assert!(
            metrics_a.contains("counter pool_completed_total 32"),
            "{metrics_a}"
        );
        assert!(
            metrics_a.contains("gauge pool_queue_depth 32"),
            "{metrics_a}"
        );
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn uncover_telemetry_artifacts_are_deterministic() {
        let base =
            std::env::temp_dir().join(format!("dramdig-uncover-telem-{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        let run = |tag: &str| {
            let trace = base.join(format!("{tag}.json"));
            let metrics = base.join(format!("{tag}.txt"));
            execute(&Command::Uncover {
                machine: 4,
                seed: 1,
                ablate: None,
                checkpoint: None,
                resume: false,
                budget: None,
                observables: vec![ObservableKind::ConflictTiming],
                trace: Some(trace.to_str().unwrap().to_string()),
                metrics: Some(metrics.to_str().unwrap().to_string()),
            })
            .unwrap();
            (
                std::fs::read_to_string(trace).unwrap(),
                std::fs::read_to_string(metrics).unwrap(),
            )
        };
        let (trace_a, metrics_a) = run("a");
        let (trace_b, metrics_b) = run("b");
        assert_eq!(trace_a, trace_b, "same-seed traces must be byte-identical");
        assert_eq!(metrics_a, metrics_b);
        // Spans for every phase, plus the fine-grained oracle batches that
        // `--trace` switches on.
        for needle in [
            "\"name\":\"calibration\"",
            "\"name\":\"validation\"",
            "\"cat\":\"oracle_batch\"",
        ] {
            assert!(trace_a.contains(needle), "missing {needle}");
        }
        assert!(
            metrics_a.contains("counter measurements_total "),
            "{metrics_a}"
        );
        std::fs::remove_dir_all(&base).unwrap();
    }

    /// Table-driven coverage of the whole parse surface: each row is a
    /// command line and either the command it must parse to or `None` for a
    /// usage error.
    #[test]
    fn parse_table_covers_campaign_and_existing_flags() {
        fn spec(machines: Vec<u8>) -> CampaignSpec {
            CampaignSpec {
                machines,
                seeds: vec![1],
                profiles: vec![Profile::Optimized],
                ablations: vec![None],
                max_retries: 2,
            }
        }
        let table: Vec<(&[&str], Option<Command>)> = vec![
            // --- campaign run: defaults, ranges, explicit dimensions -------
            (
                &["campaign", "run", "--dir", "t2", "--machines", "1-9"],
                Some(Command::Campaign(CampaignAction::Run {
                    trace: None,
                    metrics: None,
                    dir: "t2".into(),
                    spec: spec(vec![1, 2, 3, 4, 5, 6, 7, 8, 9]),
                    workers: 4,
                    limit: None,
                })),
            ),
            (
                &[
                    "campaign",
                    "run",
                    "--dir",
                    "d",
                    "--machines",
                    "4,7",
                    "--workers",
                    "8",
                    "--limit",
                    "3",
                ],
                Some(Command::Campaign(CampaignAction::Run {
                    trace: None,
                    metrics: None,
                    dir: "d".into(),
                    spec: spec(vec![4, 7]),
                    workers: 8,
                    limit: Some(3),
                })),
            ),
            (
                &[
                    "campaign",
                    "run",
                    "--dir",
                    "d",
                    "--machines",
                    "1,3-5",
                    "--seeds",
                    "1,2",
                    "--profiles",
                    "naive,optimized",
                    "--ablations",
                    "none,sysinfo",
                    "--retries",
                    "0",
                ],
                Some(Command::Campaign(CampaignAction::Run {
                    trace: None,
                    metrics: None,
                    dir: "d".into(),
                    spec: CampaignSpec {
                        machines: vec![1, 3, 4, 5],
                        seeds: vec![1, 2],
                        profiles: vec![Profile::Naive, Profile::Optimized],
                        ablations: vec![None, Some(campaign::Ablation::SystemInfo)],
                        max_retries: 0,
                    },
                    workers: 4,
                    limit: None,
                })),
            ),
            // --- campaign resume/status/query ------------------------------
            (
                &["campaign", "resume", "--dir", "t2"],
                Some(Command::Campaign(CampaignAction::Resume {
                    dir: "t2".into(),
                    workers: 4,
                    limit: None,
                })),
            ),
            (
                &[
                    "campaign",
                    "resume",
                    "--dir",
                    "t2",
                    "--workers",
                    "2",
                    "--limit",
                    "1",
                ],
                Some(Command::Campaign(CampaignAction::Resume {
                    dir: "t2".into(),
                    workers: 2,
                    limit: Some(1),
                })),
            ),
            (
                &["campaign", "status", "--dir", "t2"],
                Some(Command::Campaign(CampaignAction::Status {
                    dir: "t2".into(),
                })),
            ),
            (
                &["campaign", "query", "--dir", "t2", "--func", "(13, 16)"],
                Some(Command::Campaign(CampaignAction::Query {
                    dir: "t2".into(),
                    func: "(13, 16)".into(),
                })),
            ),
            // --- campaign mapreduce/worker/dlq ------------------------------
            (
                &[
                    "campaign",
                    "mapreduce",
                    "--dir",
                    "grid",
                    "--scenarios",
                    "1000",
                ],
                Some(Command::Campaign(CampaignAction::Mapreduce {
                    dir: "grid".into(),
                    spec: campaign::mapreduce::GridSpec {
                        scenarios: 1000,
                        seed: 1,
                        profile: Profile::Fast,
                        max_retries: 1,
                    },
                    processes: 4,
                    transport: MapTransport::Process,
                    worker_bin: None,
                    inject_kill: None,
                    history: None,
                    metrics: None,
                })),
            ),
            (
                &[
                    "campaign",
                    "mapreduce",
                    "--dir",
                    "grid",
                    "--scenarios",
                    "24",
                    "--seed",
                    "7",
                    "--profile",
                    "optimized",
                    "--retries",
                    "2",
                    "--processes",
                    "3",
                    "--transport",
                    "sim",
                    "--inject-kill",
                    "1:2",
                    "--history",
                    "h.txt",
                ],
                Some(Command::Campaign(CampaignAction::Mapreduce {
                    dir: "grid".into(),
                    spec: campaign::mapreduce::GridSpec {
                        scenarios: 24,
                        seed: 7,
                        profile: Profile::Optimized,
                        max_retries: 2,
                    },
                    processes: 3,
                    transport: MapTransport::Sim,
                    worker_bin: None,
                    inject_kill: Some((1, 2)),
                    history: Some("h.txt".into()),
                    metrics: None,
                })),
            ),
            (
                &["campaign", "worker"],
                Some(Command::Campaign(CampaignAction::Worker {
                    inject_kill: None,
                })),
            ),
            (
                &["campaign", "worker", "--inject-kill", "2"],
                Some(Command::Campaign(CampaignAction::Worker {
                    inject_kill: Some(2),
                })),
            ),
            (
                &["campaign", "dlq", "list", "--dir", "grid"],
                Some(Command::Campaign(CampaignAction::Dlq {
                    dir: "grid".into(),
                    op: DlqOp::List,
                    job: None,
                })),
            ),
            (
                &[
                    "campaign",
                    "dlq",
                    "inspect",
                    "--dir",
                    "grid",
                    "--job",
                    "g0007-s1-fast",
                ],
                Some(Command::Campaign(CampaignAction::Dlq {
                    dir: "grid".into(),
                    op: DlqOp::Inspect,
                    job: Some("g0007-s1-fast".into()),
                })),
            ),
            (
                &["campaign", "dlq", "retry", "--dir", "grid"],
                Some(Command::Campaign(CampaignAction::Dlq {
                    dir: "grid".into(),
                    op: DlqOp::Retry,
                    job: None,
                })),
            ),
            (
                &[
                    "campaign",
                    "dlq",
                    "reprocess",
                    "--dir",
                    "grid",
                    "--job",
                    "g0007-s1-fast",
                ],
                Some(Command::Campaign(CampaignAction::Dlq {
                    dir: "grid".into(),
                    op: DlqOp::Reprocess,
                    job: Some("g0007-s1-fast".into()),
                })),
            ),
            // --- mapreduce/worker/dlq usage errors --------------------------
            (&["campaign", "mapreduce", "--dir", "grid"], None), // no --scenarios
            (
                &["campaign", "mapreduce", "--dir", "g", "--scenarios", "0"],
                None,
            ),
            (
                &[
                    "campaign",
                    "mapreduce",
                    "--dir",
                    "g",
                    "--scenarios",
                    "4",
                    "--transport",
                    "carrier-pigeon",
                ],
                None,
            ),
            (
                &[
                    "campaign",
                    "mapreduce",
                    "--dir",
                    "g",
                    "--scenarios",
                    "4",
                    "--inject-kill",
                    "2",
                ],
                None, // missing worker:request separator
            ),
            (&["campaign", "worker", "--inject-kill"], None), // value-less flag
            (&["campaign", "dlq"], None),
            (&["campaign", "dlq", "purge", "--dir", "g"], None),
            (&["campaign", "dlq", "inspect", "--dir", "g"], None), // no --job
            (&["campaign", "dlq", "list"], None),                  // no --dir
            // --- campaign usage errors -------------------------------------
            (&["campaign"], None),
            (&["campaign", "launch"], None),
            (&["campaign", "run", "--machines", "1-9"], None), // no --dir
            (&["campaign", "run", "--dir", "d"], None),        // no --machines
            (
                &["campaign", "run", "--dir", "d", "--machines", "9-1"],
                None,
            ),
            (&["campaign", "run", "--dir", "d", "--machines", "x"], None),
            // 260 must not truncate onto machine 4 (260 % 256).
            (
                &["campaign", "run", "--dir", "d", "--machines", "260"],
                None,
            ),
            (&["campaign", "run", "--dir", "d", "--machines", "0"], None),
            // Misspelled flags must fail up front, not run a default sweep.
            (
                &[
                    "campaign",
                    "run",
                    "--dir",
                    "d",
                    "--machines",
                    "4",
                    "--profile",
                    "naive",
                ],
                None,
            ),
            (
                &["campaign", "run", "--dir", "d", "--machines", "4", "stray"],
                None,
            ),
            (&["campaign", "run", "--dir", "d", "--machines"], None),
            (
                &["campaign", "resume", "--dir", "d", "--machines", "4"],
                None,
            ),
            (
                &["campaign", "status", "--dir", "d", "--workers", "2"],
                None,
            ),
            (&["campaign", "query", "--dir", "d", "--funcs", "(6)"], None),
            (
                &["campaign", "run", "--dir", "d", "--machines", "1-300"],
                None,
            ),
            (&["campaign", "run", "--dir", "d", "--machines", ","], None),
            (
                &[
                    "campaign",
                    "run",
                    "--dir",
                    "d",
                    "--machines",
                    "4",
                    "--profiles",
                    "warp",
                ],
                None,
            ),
            (
                &[
                    "campaign",
                    "run",
                    "--dir",
                    "d",
                    "--machines",
                    "4",
                    "--ablations",
                    "warp",
                ],
                None,
            ),
            (
                &[
                    "campaign",
                    "run",
                    "--dir",
                    "d",
                    "--machines",
                    "4",
                    "--workers",
                    "0",
                ],
                None,
            ),
            (
                &[
                    "campaign",
                    "run",
                    "--dir",
                    "d",
                    "--machines",
                    "4",
                    "--seeds",
                    ",",
                ],
                None,
            ),
            (&["campaign", "resume"], None),
            (&["campaign", "status"], None),
            (&["campaign", "query", "--dir", "t2"], None),
            // --- existing sub-commands stay intact -------------------------
            (
                &["uncover", "--machine", "4", "--seed", "9"],
                Some(Command::Uncover {
                    trace: None,
                    metrics: None,
                    machine: 4,
                    seed: 9,
                    ablate: None,
                    checkpoint: None,
                    resume: false,
                    budget: None,
                    observables: vec![ObservableKind::ConflictTiming],
                }),
            ),
            (
                &["uncover", "--machine", "0x4", "--ablate", "empirical"],
                Some(Command::Uncover {
                    trace: None,
                    metrics: None,
                    machine: 4,
                    seed: 0xD16,
                    ablate: Some(Ablation::Empirical),
                    checkpoint: None,
                    resume: false,
                    budget: None,
                    observables: vec![ObservableKind::ConflictTiming],
                }),
            ),
            (
                &[
                    "uncover",
                    "--machine",
                    "4",
                    "--checkpoint",
                    "ckpt",
                    "--budget",
                    "600",
                ],
                Some(Command::Uncover {
                    trace: None,
                    metrics: None,
                    machine: 4,
                    seed: 0xD16,
                    ablate: None,
                    checkpoint: Some("ckpt".into()),
                    resume: false,
                    budget: Some(600),
                    observables: vec![ObservableKind::ConflictTiming],
                }),
            ),
            (
                &[
                    "uncover",
                    "--machine",
                    "4",
                    "--checkpoint",
                    "ckpt",
                    "--resume",
                ],
                Some(Command::Uncover {
                    trace: None,
                    metrics: None,
                    machine: 4,
                    seed: 0xD16,
                    ablate: None,
                    checkpoint: Some("ckpt".into()),
                    resume: true,
                    budget: None,
                    observables: vec![ObservableKind::ConflictTiming],
                }),
            ),
            // --resume without --checkpoint has nothing to resume from.
            (&["uncover", "--machine", "4", "--resume"], None),
            (&["uncover", "--machine", "4", "--budget", "lots"], None),
            // Misspelled stateful flags must fail loudly, not silently run
            // an uncheckpointed pipeline.
            (&["uncover", "--machine", "4", "--chekpoint", "d"], None),
            (
                &[
                    "uncover",
                    "--machine",
                    "4",
                    "--checkpoint",
                    "d",
                    "--budjet",
                    "600",
                ],
                None,
            ),
            (&["uncover", "--machine", "4", "stray"], None),
            (
                &["compare", "--machine", "2"],
                Some(Command::Compare { machine: 2 }),
            ),
            (
                &["hammer", "--machine", "1", "--tool", "truth"],
                Some(Command::Hammer {
                    machine: 1,
                    tool: HammerTool::Truth,
                    tests: 1,
                }),
            ),
            (
                &["decode", "--machine", "6", "--addr", "64"],
                Some(Command::Decode {
                    machine: 6,
                    addr: 64,
                }),
            ),
            (&["list-machines"], Some(Command::ListMachines)),
            (&["help"], Some(Command::Help)),
            (&["uncover"], None),
            (&["uncover", "--machine", "four"], None),
            (&["hammer", "--machine", "1", "--tool", "hope"], None),
            (&["frobnicate"], None),
            // --- telemetry flags on uncover, eval and campaign run ---------
            (
                &[
                    "uncover",
                    "--machine",
                    "4",
                    "--trace",
                    "trace.json",
                    "--metrics",
                    "metrics.txt",
                ],
                Some(Command::Uncover {
                    machine: 4,
                    seed: 0xD16,
                    ablate: None,
                    checkpoint: None,
                    resume: false,
                    budget: None,
                    observables: vec![ObservableKind::ConflictTiming],
                    trace: Some("trace.json".into()),
                    metrics: Some("metrics.txt".into()),
                }),
            ),
            (
                &["eval", "--grid", "ci", "--trace", "trace.json"],
                Some(Command::Eval {
                    grid: GridKind::Ci,
                    seed: 1,
                    workers: 4,
                    out: None,
                    history: None,
                    observables: vec![ObservableKind::ConflictTiming],
                    trace: Some("trace.json".into()),
                    metrics: None,
                }),
            ),
            (
                &[
                    "campaign",
                    "run",
                    "--dir",
                    "t2",
                    "--machines",
                    "4",
                    "--metrics",
                    "metrics.txt",
                ],
                Some(Command::Campaign(CampaignAction::Run {
                    dir: "t2".into(),
                    spec: spec(vec![4]),
                    workers: 4,
                    limit: None,
                    trace: None,
                    metrics: Some("metrics.txt".into()),
                })),
            ),
            // Misspelled telemetry flags fail loudly instead of silently
            // running without the requested artifact.
            (&["uncover", "--machine", "4", "--traces", "t.json"], None),
            (&["eval", "--grid", "ci", "--metric", "m.txt"], None),
            (
                &[
                    "campaign",
                    "run",
                    "--dir",
                    "d",
                    "--machines",
                    "4",
                    "--trace-out",
                    "t.json",
                ],
                None,
            ),
        ];
        for (words, expected) in table {
            let parsed = Command::parse(&args(words));
            match expected {
                Some(command) => {
                    assert_eq!(parsed.ok(), Some(command), "while parsing {words:?}")
                }
                None => {
                    let err = parsed.expect_err(&format!("{words:?} must be rejected"));
                    assert!(
                        matches!(err, CliError::Usage(_)),
                        "{words:?} must be a usage error, got {err:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn uncover_checkpoint_budget_resume_lifecycle() {
        let dir = std::env::temp_dir().join(format!("dramdig-cli-uncover-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_str = dir.to_str().unwrap().to_string();
        let uncover = |checkpoint: Option<String>, resume: bool, budget: Option<u64>| {
            execute(&Command::Uncover {
                trace: None,
                metrics: None,
                machine: 4,
                seed: 1,
                ablate: None,
                checkpoint,
                resume,
                budget,
                observables: vec![ObservableKind::ConflictTiming],
            })
        };

        // Budget kills the run after the partition; the interruption is a
        // report, not an error, and names the resume command.
        let out = uncover(Some(dir_str.clone()), false, Some(600)).unwrap();
        assert!(out.contains("interrupted before"), "{out}");
        assert!(out.contains("--resume"), "{out}");
        assert!(dir.join("02-partition.phase").exists());

        // Resuming without a prior checkpoint in a fresh dir is refused.
        let err = uncover(Some(format!("{dir_str}-nope")), true, None).unwrap_err();
        assert!(err.to_string().contains("no checkpoint"), "{err}");

        // A different run (other machine/ablation) must not adopt the dir.
        let err = execute(&Command::Uncover {
            trace: None,
            metrics: None,
            machine: 7,
            seed: 1,
            ablate: None,
            checkpoint: Some(dir_str.clone()),
            resume: true,
            budget: None,
            observables: vec![ObservableKind::ConflictTiming],
        })
        .unwrap_err();
        assert!(err.to_string().contains("different run"), "{err}");

        // Resume completes, and the report is byte-identical to an
        // uninterrupted run of the same seed.
        let resumed = uncover(Some(dir_str.clone()), true, None).unwrap();
        let straight = uncover(None, false, None).unwrap();
        assert_eq!(resumed, straight);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn campaign_lifecycle_run_interrupt_resume_status_query() {
        let dir = std::env::temp_dir().join(format!("dramdig-cli-campaign-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_str = dir.to_str().unwrap().to_string();
        let spec = CampaignSpec {
            machines: vec![4, 7],
            seeds: vec![1],
            profiles: vec![Profile::Fast],
            ablations: vec![None],
            max_retries: 2,
        };

        // Run with --limit 1: an interrupted campaign.
        let out = execute(&Command::Campaign(CampaignAction::Run {
            trace: None,
            metrics: None,
            dir: dir_str.clone(),
            spec: spec.clone(),
            workers: 1,
            limit: Some(1),
        }))
        .unwrap();
        assert!(out.contains("1/2 jobs completed"), "{out}");
        assert!(out.contains("campaign resume"), "{out}");

        // Status sees the pending half.
        let out = execute(&Command::Campaign(CampaignAction::Status {
            dir: dir_str.clone(),
        }))
        .unwrap();
        assert!(out.contains("1/2 completed"), "{out}");
        assert!(out.contains("pending"), "{out}");

        // Re-running with a different spec is refused.
        let err = execute(&Command::Campaign(CampaignAction::Run {
            trace: None,
            metrics: None,
            dir: dir_str.clone(),
            spec: CampaignSpec {
                machines: vec![4],
                ..spec.clone()
            },
            workers: 1,
            limit: None,
        }))
        .unwrap_err();
        assert!(err.to_string().contains("different campaign"), "{err}");

        // Resume finishes the rest.
        let out = execute(&Command::Campaign(CampaignAction::Resume {
            dir: dir_str.clone(),
            workers: 2,
            limit: None,
        }))
        .unwrap();
        assert!(out.contains("2/2 jobs completed"), "{out}");
        assert!(out.contains("distinct mappings"), "{out}");

        // Query the store for machine 4's bank function.
        let out = execute(&Command::Campaign(CampaignAction::Query {
            dir: dir_str.clone(),
            func: "(13, 16)".into(),
        }))
        .unwrap();
        assert!(out.contains("machines sharing it: No.4"), "{out}");
        let out = execute(&Command::Campaign(CampaignAction::Query {
            dir: dir_str.clone(),
            func: "(2, 3)".into(),
        }))
        .unwrap();
        assert!(out.contains("no machine shares it"), "{out}");
        assert!(execute(&Command::Campaign(CampaignAction::Query {
            dir: dir_str.clone(),
            func: "(13, 16), (14, 17)".into(),
        }))
        .is_err());

        // A truncated/corrupt store.txt must not make the campaign
        // unqueryable: the query rebuilds from the journal.
        std::fs::write(dir.join("store.txt"), "[mapping]\nfuncs = (13,").unwrap();
        let out = execute(&Command::Campaign(CampaignAction::Query {
            dir: dir_str.clone(),
            func: "(13, 16)".into(),
        }))
        .unwrap();
        assert!(out.contains("machines sharing it: No.4"), "{out}");

        // Status/resume on a directory without a campaign fail cleanly.
        assert!(execute(&Command::Campaign(CampaignAction::Status {
            dir: format!("{dir_str}-nope"),
        }))
        .is_err());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mapreduce_lifecycle_with_kill_and_dlq_requeue() {
        let dir =
            std::env::temp_dir().join(format!("dramdig-cli-mapreduce-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_str = dir.to_str().unwrap().to_string();
        let spec = campaign::mapreduce::GridSpec {
            scenarios: 8,
            seed: 1,
            profile: Profile::Fast,
            max_retries: 0,
        };
        let history = dir.join("history.txt");
        let mapreduce = |inject_kill, with_history: bool| {
            Command::Campaign(CampaignAction::Mapreduce {
                dir: dir_str.clone(),
                spec: spec.clone(),
                processes: 3,
                transport: MapTransport::Sim,
                worker_bin: None,
                inject_kill,
                history: with_history.then(|| history.to_str().unwrap().to_string()),
                metrics: None,
            })
        };

        // Three simulated workers, one killed mid-phase on its second job:
        // the grid still finishes (7 ok + the wide-function dead letter).
        let out = execute(&mapreduce(Some((0, 2)), true)).unwrap();
        assert!(out.contains("7/8 jobs completed"), "{out}");
        assert!(out.contains("1 dead-lettered"), "{out}");
        assert!(out.contains("campaign dlq list"), "{out}");
        let board = std::fs::read_to_string(dir.join("SCOREBOARD.txt")).unwrap();
        assert!(
            board.contains("g0007-s1-fast [wide-function] dead"),
            "{board}"
        );
        assert_eq!(
            std::fs::read_to_string(&history).unwrap().lines().count(),
            1
        );

        // A different spec in the same directory is refused.
        let err = execute(&Command::Campaign(CampaignAction::Mapreduce {
            dir: dir_str.clone(),
            spec: campaign::mapreduce::GridSpec {
                scenarios: 9,
                ..spec.clone()
            },
            processes: 1,
            transport: MapTransport::Sim,
            worker_bin: None,
            inject_kill: None,
            history: None,
            metrics: None,
        }))
        .unwrap_err();
        assert!(err.to_string().contains("different grid"), "{err}");

        // The DLQ is listable and inspectable.
        let out = execute(&Command::Campaign(CampaignAction::Dlq {
            dir: dir_str.clone(),
            op: DlqOp::List,
            job: None,
        }))
        .unwrap();
        assert!(out.contains("1 job(s)"), "{out}");
        assert!(out.contains("g0007-s1-fast"), "{out}");
        let out = execute(&Command::Campaign(CampaignAction::Dlq {
            dir: dir_str.clone(),
            op: DlqOp::Inspect,
            job: Some("g0007-s1-fast".into()),
        }))
        .unwrap();
        assert!(out.contains("next retry attempt: 2"), "{out}");
        assert!(execute(&Command::Campaign(CampaignAction::Dlq {
            dir: dir_str.clone(),
            op: DlqOp::Inspect,
            job: Some("g0000-s1-fast".into()),
        }))
        .is_err());

        // Retry puts the job back in play; the re-run dead-letters it again
        // (wide functions always refuse), now at attempt 2 — a genuine board
        // change, so the re-run skips the history gate.
        let out = execute(&Command::Campaign(CampaignAction::Dlq {
            dir: dir_str.clone(),
            op: DlqOp::Retry,
            job: None,
        }))
        .unwrap();
        assert!(out.contains("requeued 1 job(s) for retry"), "{out}");
        let dlq_txt = std::fs::read_to_string(dir.join("dlq.txt")).unwrap();
        assert!(dlq_txt.contains("# jobs = 0"), "{dlq_txt}");
        let out = execute(&mapreduce(None, false)).unwrap();
        assert!(out.contains("1 dead-lettered"), "{out}");
        let board = std::fs::read_to_string(dir.join("SCOREBOARD.txt")).unwrap();
        assert!(board.contains("dead attempts=2"), "{board}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn registry_gen_query_serve_lifecycle() {
        let base =
            std::env::temp_dir().join(format!("dramdig-cli-registry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let reg = base.join("reg").to_str().unwrap().to_string();
        let gen = Command::Registry(RegistryAction::Gen {
            registry_dir: reg.clone(),
            grid: None,
            count: Some(6),
            seed: 1,
            shards: 3,
        });

        // Seed the registry from generated machines ...
        let out = execute(&gen).unwrap();
        assert!(out.contains("across 3 shards"), "{out}");
        // ... and a re-run appends nothing: every attribution is present.
        let out = execute(&gen).unwrap();
        assert!(out.contains("appended 0 of 6"), "{out}");

        let out = execute(&Command::Registry(RegistryAction::Stats {
            registry_dir: reg.clone(),
        }))
        .unwrap();
        assert!(out.contains("across 3 shards"), "{out}");
        assert!(out.contains("orphans: none"), "{out}");

        // Pick a stored entry and query it back through every one-shot form.
        let shared = registry::SharedRegistry::open(&reg).unwrap();
        let snap = shared.snapshot();
        let entry = snap.mem.entries().next().unwrap();
        let func = entry.mapping.bank_funcs()[0];
        let out = execute(&Command::Registry(RegistryAction::Query {
            registry_dir: reg.clone(),
            func: None,
            fingerprint: Some(format!("{:016x}", entry.fingerprint)),
            nearest: None,
            k: 3,
        }))
        .unwrap();
        assert!(
            out.contains(&format!("fingerprint {:016x}: found", entry.fingerprint)),
            "{out}"
        );
        let out = execute(&Command::Registry(RegistryAction::Query {
            registry_dir: reg.clone(),
            func: Some(func.to_string()),
            fingerprint: None,
            nearest: None,
            k: 3,
        }))
        .unwrap();
        assert!(
            out.contains(&format!("entry = {:016x}", entry.fingerprint)),
            "{out}"
        );
        assert!(out.contains("machines sharing it:"), "{out}");
        let out = execute(&Command::Registry(RegistryAction::Query {
            registry_dir: reg.clone(),
            func: None,
            fingerprint: None,
            nearest: Some(func.to_string()),
            k: 2,
        }))
        .unwrap();
        assert!(out.contains("nearest k=2"), "{out}");
        assert!(
            out.contains(&format!("hit = {:016x}", entry.fingerprint)),
            "{out}"
        );

        // A serve session over the same registry is byte-deterministic and
        // leaves its latency/work counters in the metrics sidecar only.
        let input = base.join("requests.txt");
        std::fs::write(
            &input,
            format!(
                "# smoke session\nsharing {func}\nlookup {:016x}\nstats\nquit\n",
                entry.fingerprint
            ),
        )
        .unwrap();
        let serve = |tag: &str| {
            let metrics = base.join(format!("metrics-{tag}.txt"));
            let out = execute(&Command::Serve {
                registry: reg.clone(),
                input: Some(input.to_str().unwrap().to_string()),
                metrics: Some(metrics.to_str().unwrap().to_string()),
            })
            .unwrap();
            (out, std::fs::read_to_string(metrics).unwrap())
        };
        let (out_a, metrics_a) = serve("a");
        let (out_b, _) = serve("b");
        assert_eq!(out_a, out_b, "serve sessions must be byte-deterministic");
        assert!(out_a.contains("ok stats"), "{out_a}");
        assert!(out_a.contains("ok quit"), "{out_a}");
        assert!(!out_a.contains("latency"), "{out_a}");
        assert!(metrics_a.contains("registry_requests_total"), "{metrics_a}");

        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn registry_import_crash_and_recovery() {
        let base =
            std::env::temp_dir().join(format!("dramdig-cli-reg-import-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let camp = base.join("camp").to_str().unwrap().to_string();
        let reg = base.join("reg").to_str().unwrap().to_string();
        execute(&Command::Campaign(CampaignAction::Run {
            trace: None,
            metrics: None,
            dir: camp.clone(),
            spec: CampaignSpec {
                machines: vec![4],
                seeds: vec![1],
                profiles: vec![Profile::Fast],
                ablations: vec![None],
                max_retries: 2,
            },
            workers: 1,
            limit: None,
        }))
        .unwrap();
        let import = |crash_after: Option<usize>| {
            execute(&Command::Registry(RegistryAction::Import {
                campaign_dir: camp.clone(),
                registry_dir: reg.clone(),
                shards: 2,
                crash_after,
            }))
        };
        let stats = || {
            execute(&Command::Registry(RegistryAction::Stats {
                registry_dir: reg.clone(),
            }))
            .unwrap()
        };

        // A crash after the segment write but before the manifest publish
        // leaves an orphan file and an empty (still-consistent) registry.
        let err = import(Some(1)).unwrap_err();
        assert!(err.to_string().contains("fault injection"), "{err}");
        let out = stats();
        assert!(out.contains("0 entries"), "{out}");
        assert!(!out.contains("orphans: none"), "{out}");

        // The retried import overwrites the orphan and publishes.
        let out = import(None).unwrap();
        assert!(out.contains("appended 1 of 1"), "{out}");
        let out = stats();
        assert!(out.contains("1 entries"), "{out}");
        assert!(out.contains("orphans: none"), "{out}");

        // The imported campaign answers span queries ...
        let out = execute(&Command::Registry(RegistryAction::Query {
            registry_dir: reg.clone(),
            func: Some("(13, 16)".into()),
            fingerprint: None,
            nearest: None,
            k: 3,
        }))
        .unwrap();
        assert!(out.contains("machines sharing it: No.4"), "{out}");

        // ... and importing again is a no-op.
        let out = import(None).unwrap();
        assert!(out.contains("appended 0 of 1"), "{out}");

        std::fs::remove_dir_all(&base).unwrap();
    }
}
