//! Workspace umbrella crate for the DRAMDig reproduction.
//!
//! This crate exists so the repository-level `examples/` and `tests/`
//! directories can exercise every member crate through one dependency. The
//! actual functionality lives in:
//!
//! * [`dram_model`] — addresses, mappings, GF(2) algebra, machine settings;
//! * [`dram_sim`] — the simulated DRAM substrate;
//! * [`mem_probe`] — the row-buffer-conflict timing primitive;
//! * [`dramdig`] — the paper's knowledge-assisted reverse-engineering tool;
//! * [`dram_baselines`] — DRAMA, Xiao et al. and Seaborn et al.;
//! * [`rowhammer`] — the double-sided rowhammer harness;
//! * [`campaign`] — resumable multi-machine campaign orchestration with a
//!   persistent mapping store, a first-class dead-letter queue and a
//!   map/reduce coordinator over worker processes.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub use campaign;
pub use dram_baselines;
pub use dram_model;
pub use dram_sim;
pub use dramdig;
pub use mem_probe;
pub use rowhammer;
