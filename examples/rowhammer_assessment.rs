//! Assess how vulnerable a (simulated) machine is to rowhammer: uncover its
//! DRAM address mapping with DRAMDig, then run double-sided and single-sided
//! hammering and report the induced bit flips — the workflow the paper's
//! introduction motivates ("enables users to test how vulnerable their
//! computers are to the rowhammer problem").
//!
//! ```text
//! cargo run --release --example rowhammer_assessment
//! ```

use dram_model::MachineSetting;
use dram_sim::{PhysMemory, SimConfig, SimMachine};
use dramdig::{DomainKnowledge, DramDig, DramDigConfig};
use mem_probe::SimProbe;
use rowhammer::{run_double_sided, run_single_sided, AttackerView, HammerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let setting = MachineSetting::no2_ivy_bridge_ddr3_8g();
    println!("assessing {setting}");

    // Step 1: uncover the mapping through the timing channel.
    let machine = SimMachine::from_setting(&setting, SimConfig::default());
    let mut probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
    let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
    let report = DramDig::new(knowledge, DramDigConfig::default()).run(&mut probe)?;
    println!(
        "mapping uncovered in {:.1} simulated seconds: {}",
        report.elapsed_seconds(),
        report.mapping
    );

    // Step 2: hammer with the uncovered mapping.
    let view = AttackerView::from_mapping(&report.mapping);
    let cfg = HammerConfig {
        victims: 96,
        iterations_per_pair: 6_000,
        duration_ns: None,
        rng_seed: 0xA55E55,
    };
    let mut machine = SimMachine::from_setting(&setting, SimConfig::fast_rowhammer());
    let double = run_double_sided(&mut machine, &view, &cfg);
    let mut machine = SimMachine::from_setting(&setting, SimConfig::fast_rowhammer());
    let single = run_single_sided(&mut machine, &view, &cfg);

    println!("\nrowhammer assessment ({} victim locations):", cfg.victims);
    println!(
        "  double-sided: {:4} bit flips ({} pairs truly adjacent, {:.1} s simulated)",
        double.flips,
        double.truly_double_sided,
        double.elapsed_seconds()
    );
    println!(
        "  single-sided: {:4} bit flips ({:.1} s simulated)",
        single.flips,
        single.elapsed_seconds()
    );
    if double.flips > 0 {
        println!("\nverdict: this module is vulnerable — a correct mapping lets an attacker");
        println!("flip bits from user space; consider ECC or a higher refresh rate.");
    } else {
        println!("\nverdict: no flips induced under this budget.");
    }
    Ok(())
}
