//! Quickstart: reverse engineer the DRAM address mapping of a simulated
//! Haswell machine (Table II, machine No.4) with live progress from the
//! pipeline engine's Observer API, and print what was found.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dram_model::MachineSetting;
use dram_sim::{PhysMemory, SimConfig, SimMachine};
use dramdig::engine::{EngineEvent, EngineOptions, PipelineEngine};
use dramdig::{DomainKnowledge, DramDig, DramDigConfig};
use mem_probe::SimProbe;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a machine setting and build the simulated substrate. On real
    //    hardware this would be `mem_probe::HwProbe` instead.
    let setting = MachineSetting::no4_haswell_ddr3_4g();
    println!("machine under test : {setting}");
    let machine = SimMachine::from_setting(&setting, SimConfig::default());
    let memory = PhysMemory::full(setting.system.capacity_bytes);
    let mut probe = SimProbe::new(machine, memory);

    // 2. Collect the domain knowledge the paper describes: dmidecode-style
    //    system information plus the CPU microarchitecture.
    let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));

    // 3. Run the three-step pipeline through the engine. Any closure over
    //    `&EngineEvent` is an Observer; this one prints a progress line per
    //    phase. (`EngineOptions` is also where checkpoints and budgets
    //    live — see the `dramdig uncover --checkpoint/--resume` CLI.)
    let engine = PipelineEngine::new(knowledge.clone(), DramDigConfig::default());
    let report = engine.run(
        &mut probe,
        &EngineOptions::default(),
        &mut |event: &EngineEvent| {
            if let EngineEvent::PhaseCompleted { phase, costs, .. } = event {
                println!(
                    "  {phase}: {} measurements, {:.3} s",
                    costs.measurements,
                    costs.elapsed_seconds()
                );
            }
        },
    )?;

    println!("\n{report}\n");
    println!("ground truth       : {}", setting.mapping());
    println!(
        "recovered correctly: {}",
        report.mapping.equivalent_to(setting.mapping())
    );

    // 4. The one-call wrapper is still there for code that does not need
    //    progress events or checkpoints — same pipeline, same report.
    let machine = SimMachine::from_setting(&setting, SimConfig::default());
    let mut probe = SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes));
    let wrapped = DramDig::new(knowledge, DramDigConfig::default()).run(&mut probe)?;
    println!(
        "DramDig::run agrees: {}",
        wrapped.mapping.equivalent_to(&report.mapping)
    );
    Ok(())
}
