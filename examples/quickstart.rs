//! Quickstart: reverse engineer the DRAM address mapping of a simulated
//! Haswell machine (Table II, machine No.4) and print what was found.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dram_model::MachineSetting;
use dram_sim::{PhysMemory, SimConfig, SimMachine};
use dramdig::{DomainKnowledge, DramDig, DramDigConfig};
use mem_probe::SimProbe;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a machine setting and build the simulated substrate. On real
    //    hardware this would be `mem_probe::HwProbe` instead.
    let setting = MachineSetting::no4_haswell_ddr3_4g();
    println!("machine under test : {setting}");
    let machine = SimMachine::from_setting(&setting, SimConfig::default());
    let memory = PhysMemory::full(setting.system.capacity_bytes);
    let mut probe = SimProbe::new(machine, memory);

    // 2. Collect the domain knowledge the paper describes: dmidecode-style
    //    system information plus the CPU microarchitecture.
    let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));

    // 3. Run the three-step pipeline.
    let mut tool = DramDig::new(knowledge, DramDigConfig::default());
    let report = tool.run(&mut probe)?;

    println!("\n{report}\n");
    println!("ground truth       : {}", setting.mapping());
    println!(
        "recovered correctly: {}",
        report.mapping.equivalent_to(setting.mapping())
    );
    Ok(())
}
