//! Reverse engineer a machine that is *not* one of the paper's nine settings:
//! a hypothetical single-channel DDR4 module with a custom bank hash,
//! demonstrating that the tool only needs system information, not a
//! pre-existing entry in a table — and that the engine's Observer API
//! narrates the phases while it works.
//!
//! ```text
//! cargo run --release --example custom_machine
//! ```

use dram_model::{DdrGeneration, DramGeometry, MappingBuilder, SystemInfo};
use dram_sim::{PhysMemory, SimConfig, SimMachine};
use dramdig::engine::{EngineEvent, EngineOptions, PipelineEngine};
use dramdig::{DomainKnowledge, DramDigConfig};
use mem_probe::SimProbe;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2 GiB single-rank DDR4 part with 8 banks and a bank hash that XORs
    // each pure bank bit with two row bits — not a Table II configuration.
    let geometry = DramGeometry::new(1, 1, 1, 8);
    let capacity = 2u64 << 30;
    let ground_truth = MappingBuilder::new()
        .bank_func(&[13, 16, 19])
        .bank_func(&[14, 17, 20])
        .bank_func(&[15, 18, 21])
        .row_bit_range(16, 30)
        .column_bit_range(0, 12)
        .build()?;
    let system = SystemInfo::new(capacity, geometry, DdrGeneration::Ddr4);
    println!(
        "custom machine: {} banks, {} GiB",
        geometry.total_banks(),
        capacity >> 30
    );
    println!("ground truth  : {ground_truth}");

    let machine = SimMachine::new(ground_truth.clone(), SimConfig::default());
    let mut probe = SimProbe::new(machine, PhysMemory::full(capacity));
    let knowledge = DomainKnowledge::new(system, None);

    // The engine narrates its progress through the Observer: phase starts,
    // per-phase costs, and (when a checkpoint directory or budget is set in
    // `EngineOptions`) restored phases and budget pressure.
    let engine = PipelineEngine::new(knowledge, DramDigConfig::default());
    let report = engine.run(
        &mut probe,
        &EngineOptions::default(),
        &mut |event: &EngineEvent| match event {
            EngineEvent::PhaseStarted { phase } => println!("  {phase} ..."),
            EngineEvent::PhaseCompleted { phase, costs, .. } => {
                println!("  {phase}: done ({} measurements)", costs.measurements);
            }
            _ => {}
        },
    )?;

    println!("recovered     : {}", report.mapping);
    println!(
        "equivalent    : {} ({} measurements, {:.2} s simulated)",
        report.mapping.equivalent_to(&ground_truth),
        report.total.measurements,
        report.elapsed_seconds()
    );
    Ok(())
}
