//! Demonstrates the real-hardware probe path (x86_64 Linux, run as root).
//!
//! On a bare-metal machine this allocates a buffer, resolves physical frames
//! through `/proc/self/pagemap`, calibrates the row-buffer-conflict threshold
//! with `clflush`/`rdtscp` timings and prints the latency histogram summary.
//! Inside containers or without root it explains why the hardware path is
//! unavailable and exits cleanly — the rest of the workspace runs on the
//! simulator instead.
//!
//! ```text
//! sudo cargo run --release --example hardware_probe
//! ```

fn main() {
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    {
        use mem_probe::{HwProbe, LatencyCalibration, MemoryProbe};

        match HwProbe::new(64 << 20) {
            Ok(mut probe) => {
                println!(
                    "hardware probe ready: {} resident pages, {} timing rounds per measurement",
                    probe.memory().len(),
                    probe.rounds()
                );
                match LatencyCalibration::calibrate(&mut probe, 500, 0xCAFE) {
                    Ok(cal) => {
                        println!(
                            "calibrated threshold: {} cycles (hit cluster {:.0}, conflict cluster {:.0}, {} samples)",
                            cal.threshold_ns(),
                            cal.low_mean_ns(),
                            cal.high_mean_ns(),
                            cal.samples()
                        );
                        println!("next step: feed this probe to dramdig::DramDig exactly like the simulator probe.");
                    }
                    Err(e) => println!("calibration failed: {e}"),
                }
            }
            Err(e) => {
                println!("hardware probe unavailable: {e}");
                println!("(this is expected in containers/CI; use the simulator-backed examples instead)");
            }
        }
    }
    #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
    println!("the hardware probe requires x86_64 Linux; use the simulator-backed examples instead");
}
