//! Run DRAMDig and the three baselines on the same simulated machine and
//! compare what each tool recovers and what it costs — a one-machine slice of
//! the paper's Table I / Figure 2 story.
//!
//! ```text
//! cargo run --release --example compare_tools [machine-number]
//! ```

use dram_baselines::{BaselineError, Drama, DramaConfig, Seaborn, Xiao};
use dram_model::MachineSetting;
use dram_sim::{PhysMemory, SimConfig, SimMachine};
use dramdig::{DomainKnowledge, DramDig, DramDigConfig};
use mem_probe::SimProbe;

fn probe_for(setting: &MachineSetting) -> SimProbe {
    let machine = SimMachine::from_setting(setting, SimConfig::default());
    SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let number: u8 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(2);
    let setting = MachineSetting::by_number(number)
        .ok_or_else(|| format!("machine number must be 1..=9, got {number}"))?;
    println!("comparing tools on {setting}\n");

    // DRAMDig.
    let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
    let mut probe = probe_for(&setting);
    match DramDig::new(knowledge, DramDigConfig::default()).run(&mut probe) {
        Ok(report) => println!(
            "DRAMDig       : correct = {}, {:>8} measurements, {:>7.1} s simulated",
            report.mapping.equivalent_to(setting.mapping()),
            report.total.measurements,
            report.elapsed_seconds()
        ),
        Err(e) => println!("DRAMDig       : failed — {e}"),
    }

    // DRAMA.
    let mut probe = probe_for(&setting);
    match Drama::new(DramaConfig::default()).run(&mut probe, setting.system.address_bits()) {
        Ok(outcome) => println!(
            "DRAMA         : bank partition correct = {}, full mapping = {}, {:>8} measurements, {:>7.1} s simulated",
            outcome.bank_partition_matches(setting.mapping()),
            outcome.mapping.is_some(),
            outcome.measurements,
            outcome.elapsed_seconds()
        ),
        Err(e) => println!("DRAMA         : failed — {e}"),
    }

    // Xiao et al.
    let mut probe = probe_for(&setting);
    match Xiao::with_defaults().run(&mut probe, &setting.system) {
        Ok(outcome) => println!(
            "Xiao et al.   : correct = {}, {:>8} measurements, {:>7.1} s simulated",
            outcome.matches(setting.mapping()),
            outcome.measurements,
            outcome.elapsed_seconds()
        ),
        Err(BaselineError::Stuck {
            reason,
            measurements,
            ..
        }) => {
            println!("Xiao et al.   : stuck ({reason}; {measurements} measurements spent)")
        }
        Err(e) => println!("Xiao et al.   : not applicable — {e}"),
    }

    // Seaborn et al.
    let mut machine = SimMachine::from_setting(&setting, SimConfig::fast_rowhammer());
    match Seaborn::with_defaults().run(&mut machine, setting.microarch) {
        Ok(outcome) => println!(
            "Seaborn et al.: correct = {}, blind survey {:>5.1} s simulated",
            outcome.matches(setting.mapping()),
            outcome.elapsed_seconds()
        ),
        Err(e) => println!("Seaborn et al.: not applicable — {e}"),
    }
    Ok(())
}
