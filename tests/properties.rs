//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use dram_model::{bits, gf2, AddressMapping, DramAddress, PhysAddr, XorFunc};
use rowhammer::AttackerView;

/// Strategy producing a random but *valid* address mapping: `k` bank
/// functions that each XOR one pure bank bit with one row bit, a contiguous
/// row range above and a contiguous column range below — the shape every
/// Intel mapping in Table II follows.
fn arb_mapping() -> impl Strategy<Value = AddressMapping> {
    (1usize..=5, 6u8..=13, 10u8..=14).prop_map(|(k, column_bits, row_count)| {
        let col_end = column_bits - 1; // columns 0..=col_end
        let pure_start = column_bits; // k pure bank bits
        let row_start = pure_start + k as u8;
        let row_end = row_start + row_count - 1;
        let funcs: Vec<XorFunc> = (0..k as u8)
            .map(|i| XorFunc::from_bits(&[pure_start + i, row_start + i]))
            .collect();
        AddressMapping::new(
            funcs,
            (row_start..=row_end).collect(),
            (0..=col_end).collect(),
        )
        .expect("constructed mapping is valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mapping_roundtrips_every_address(mapping in arb_mapping(), seed in any::<u64>()) {
        let capacity = mapping.capacity_bytes();
        let addr = PhysAddr::new(seed % capacity);
        let dram = mapping.to_dram(addr);
        prop_assert!(u64::from(dram.bank) < u64::from(mapping.num_banks()));
        prop_assert!(u64::from(dram.row) < u64::from(mapping.num_rows()));
        prop_assert!(u64::from(dram.column) < u64::from(mapping.num_columns()));
        prop_assert_eq!(mapping.to_phys(dram).unwrap(), addr);
    }

    #[test]
    fn mapping_inverse_roundtrips_every_coordinate(
        mapping in arb_mapping(),
        bank in any::<u32>(),
        row in any::<u32>(),
        column in any::<u32>(),
    ) {
        let dram = DramAddress::new(
            bank % mapping.num_banks(),
            row % mapping.num_rows(),
            column % mapping.num_columns(),
        );
        let addr = mapping.to_phys(dram).unwrap();
        prop_assert!(addr.raw() < mapping.capacity_bytes());
        prop_assert_eq!(mapping.to_dram(addr), dram);
    }

    #[test]
    fn single_bit_flips_behave_as_the_coarse_detector_assumes(
        mapping in arb_mapping(),
        seed in any::<u64>(),
        bit in 0u8..32,
    ) {
        prop_assume!(bit < mapping.physical_bits());
        let addr = PhysAddr::new(seed % mapping.capacity_bytes());
        let flipped = addr.with_bit_flipped(bit);
        let a = mapping.to_dram(addr);
        let b = mapping.to_dram(flipped);
        let in_function = mapping.bank_funcs().iter().any(|f| f.contains_bit(bit));
        let is_row = mapping.row_bits().contains(&bit);
        if in_function {
            prop_assert_ne!(a.bank, b.bank, "function bits always change the bank");
        } else if is_row {
            prop_assert!(a.bank == b.bank && a.row != b.row, "pure row bits are SBDR");
        } else {
            prop_assert!(a.bank == b.bank && a.row == b.row, "column bits change neither");
        }
    }

    #[test]
    fn gather_scatter_roundtrip(positions in proptest::collection::btree_set(0u8..60, 1..12), value in any::<u64>()) {
        let positions: Vec<u8> = positions.into_iter().collect();
        let truncated = value & ((1u64 << positions.len()) - 1);
        let scattered = bits::scatter_bits(truncated, &positions);
        prop_assert_eq!(bits::gather_bits(scattered, &positions), truncated);
    }

    #[test]
    fn remove_redundant_preserves_the_span(masks in proptest::collection::vec(1u64..(1 << 20), 1..10)) {
        let funcs: Vec<XorFunc> = masks.iter().map(|&m| XorFunc::from_mask(m)).collect();
        let reduced = gf2::remove_redundant(&funcs);
        // Reduced set is linearly independent…
        prop_assert!(gf2::functions_independent(&reduced));
        // …and spans exactly the same space.
        let original = gf2::Gf2Matrix::from_funcs(&funcs);
        let basis = gf2::Gf2Matrix::from_funcs(&reduced);
        for f in &funcs {
            prop_assert!(basis.spans(f.mask()));
        }
        for f in &reduced {
            prop_assert!(original.spans(f.mask()));
        }
        prop_assert_eq!(reduced.len(), original.rank());
    }

    #[test]
    fn solve_any_produces_real_solutions(
        rows in proptest::collection::vec(any::<u64>(), 1..8),
        rhs in any::<u64>(),
        n in 1usize..16,
    ) {
        let rows: Vec<u64> = rows.iter().map(|r| r & ((1u64 << n) - 1)).collect();
        let rhs = rhs & ((1u64 << rows.len()) - 1);
        if let Some(x) = gf2::solve_any(&rows, rhs, n) {
            for (i, &row) in rows.iter().enumerate() {
                let lhs = (row & x).count_ones() % 2 == 1;
                prop_assert_eq!(lhs, (rhs >> i) & 1 == 1, "equation {} not satisfied", i);
            }
        }
    }

    #[test]
    fn attacker_with_full_knowledge_always_builds_adjacent_rows(
        mapping in arb_mapping(),
        seed in any::<u64>(),
    ) {
        let view = AttackerView::from_mapping(&mapping);
        let addr = PhysAddr::new(seed % mapping.capacity_bytes());
        let row = mapping.row_of(addr);
        prop_assume!(row > 0 && u64::from(row) + 1 < u64::from(mapping.num_rows()));
        let (below, above) = view.aggressors_for(addr).expect("interior rows have aggressors");
        let v = mapping.to_dram(addr);
        let b = mapping.to_dram(below);
        let a = mapping.to_dram(above);
        prop_assert_eq!(b.bank, v.bank);
        prop_assert_eq!(a.bank, v.bank);
        prop_assert_eq!(b.row + 1, v.row);
        prop_assert_eq!(a.row, v.row + 1);
    }

    #[test]
    fn xor_func_combine_matches_pointwise_xor(mask_a in any::<u64>(), mask_b in any::<u64>(), addr in any::<u64>()) {
        let a = XorFunc::from_mask(mask_a);
        let b = XorFunc::from_mask(mask_b);
        let addr = PhysAddr::new(addr);
        prop_assert_eq!(
            a.combine(b).evaluate(addr),
            a.evaluate(addr) ^ b.evaluate(addr)
        );
    }
}
