//! Repo-level integration of the map/reduce campaign coordinator: the same
//! small generated-machine grid drained under different worker topologies —
//! including one with a mid-phase worker kill — must reduce to byte-identical
//! scoreboard and store artifacts, and a dead-letter retry must put the
//! fodder job back in play at the next attempt.

use dramdig_repro::campaign::mapreduce::{run_mapreduce, GridSpec, SimTransport, WorkerTransport};
use dramdig_repro::campaign::{dead_letters, requeue, CampaignPaths, Profile, RequeueMode};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dramdig-repro-mr-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn transports(workers: usize, kill_first_at: Option<u32>) -> Vec<Box<dyn WorkerTransport>> {
    (0..workers)
        .map(|i| match kill_first_at {
            Some(n) if i == 0 => Box::new(SimTransport::killed_at(n)) as Box<dyn WorkerTransport>,
            _ => Box::new(SimTransport::new()),
        })
        .collect()
}

#[test]
fn grid_reduces_identically_across_topologies_and_retries_from_the_dlq() {
    // 8 scenarios: indexes 3 is row-remap, 7 is wide-function DLQ fodder.
    let spec = GridSpec::new(8, 1, Profile::Fast);

    let single_dir = temp_dir("single");
    let single = run_mapreduce(
        &spec,
        &CampaignPaths::new(&single_dir),
        transports(1, None),
        None,
    )
    .expect("single-process drain");
    assert_eq!(single.state.completed.len(), 7);
    assert_eq!(single.state.dead.len(), 1, "index 7 is fodder");

    // Three workers, the first kill -9'd (simulated) on its second lease:
    // the orphaned lease is stolen and resumed from its checkpoint.
    let multi_dir = temp_dir("multi");
    let multi_paths = CampaignPaths::new(&multi_dir);
    let multi = run_mapreduce(&spec, &multi_paths, transports(3, Some(2)), None)
        .expect("three-process drain with one kill");

    assert_eq!(
        single.scoreboard, multi.scoreboard,
        "scoreboard must not depend on worker topology or kill points"
    );
    assert_eq!(
        single.store.encode(),
        multi.store.encode(),
        "merged store must not depend on worker topology or kill points"
    );
    let board_file = std::fs::read_to_string(multi_dir.join("SCOREBOARD.txt")).unwrap();
    assert_eq!(board_file, multi.scoreboard, "artifact matches the outcome");

    // The fodder job is a first-class dead letter; a retry re-enqueues it
    // one past the dead attempt, and the next drain settles it again.
    let letters = dead_letters(&multi.state);
    assert_eq!(letters.len(), 1);
    assert!(letters[0].job.starts_with("g0007"));
    let before_attempts = letters[0].attempts;
    requeue(
        &multi_paths.journal(),
        &multi.state,
        RequeueMode::Retry,
        None,
    )
    .expect("requeue the dead letter");
    let retried =
        run_mapreduce(&spec, &multi_paths, transports(2, None), None).expect("post-retry drain");
    let letters = dead_letters(&retried.state);
    assert_eq!(letters.len(), 1, "the fodder job fails again");
    assert_eq!(
        letters[0].attempts,
        before_attempts + 1,
        "the retry burned exactly one more attempt-derived seed"
    );

    let _ = std::fs::remove_dir_all(&single_dir);
    let _ = std::fs::remove_dir_all(&multi_dir);
}
