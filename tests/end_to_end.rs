//! Cross-crate integration tests: the full pipeline from simulated machine to
//! recovered mapping to rowhammer impact, spanning every workspace crate.

use dram_model::{MachineSetting, PhysAddr};
use dram_sim::{AllocationPolicy, PhysMemory, SimConfig, SimMachine};
use dramdig::{DomainKnowledge, DramDig, DramDigConfig};
use mem_probe::SimProbe;
use rowhammer::{run_double_sided, AttackerView, HammerConfig};

fn run_dramdig_on(
    setting: &MachineSetting,
    memory: PhysMemory,
    config: DramDigConfig,
) -> dramdig::RunReport {
    let machine = SimMachine::from_setting(setting, SimConfig::default());
    let mut probe = SimProbe::new(machine, memory);
    let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
    DramDig::new(knowledge, config)
        .run(&mut probe)
        .expect("DRAMDig must succeed on Table II settings")
}

#[test]
fn dramdig_recovers_every_table_ii_setting() {
    // The full Table II sweep; the fast config caps the partition pool so the
    // whole test stays within seconds while still exercising every phase.
    for setting in MachineSetting::all() {
        let memory = PhysMemory::full(setting.system.capacity_bytes);
        let report = run_dramdig_on(&setting, memory, DramDigConfig::fast());
        assert!(
            report.mapping.equivalent_to(setting.mapping()),
            "{}: recovered {} but ground truth is {}",
            setting.label(),
            report.mapping,
            setting.mapping()
        );
        assert_eq!(
            report.mapping.row_bits(),
            setting.mapping().row_bits(),
            "{} row bits",
            setting.label()
        );
        assert_eq!(
            report.mapping.column_bits(),
            setting.mapping().column_bits(),
            "{} column bits",
            setting.label()
        );
        let validation = report.validation.expect("validation is enabled by default");
        assert!(validation.agreement() > 0.9, "{}", setting.label());
    }
}

#[test]
fn recovered_no4_mapping_round_trips_addresses_exactly() {
    // The full driver on the paper's machine No.4 (Haswell, DDR3 4 GiB):
    // the recovered mapping must not only be equivalent to the ground truth
    // up to GF(2) combinations, it must be a bijection that round-trips
    // physical addresses exactly and decodes every address to the same
    // bank the simulated memory controller uses.
    let setting = MachineSetting::no4_haswell_ddr3_4g();
    let memory = PhysMemory::full(setting.system.capacity_bytes);
    let report = run_dramdig_on(&setting, memory, DramDigConfig::default());
    let recovered = &report.mapping;
    let truth = setting.mapping();
    assert!(recovered.equivalent_to(truth));

    let capacity = recovered.capacity_bytes();
    assert_eq!(capacity, setting.system.capacity_bytes);
    // A deterministic sweep of addresses spread over the whole module,
    // plus the boundary addresses.
    let samples = (0..4096u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % capacity)
        .chain([0, 1, capacity - 1]);
    for raw in samples {
        let addr = PhysAddr::new(raw);
        let dram = recovered.to_dram(addr);
        assert_eq!(
            recovered
                .to_phys(dram)
                .expect("recovered mapping is a bijection"),
            addr,
            "address {raw:#x} does not round-trip through the recovered mapping"
        );
        // Same-bank behaviour must agree with the hardware's ground truth,
        // otherwise rowhammer aggressor placement silently degrades.
        assert_eq!(
            truth.bank_of(addr) == truth.bank_of(PhysAddr::new(0)),
            recovered.bank_of(addr) == recovered.bank_of(PhysAddr::new(0)),
            "address {raw:#x} lands in a different bank partition than the ground truth"
        );
    }
}

#[test]
fn dramdig_copes_with_a_fragmented_page_pool() {
    // The OS rarely hands out perfectly contiguous memory; Algorithm 1 must
    // still find a usable range when pages are missing at random.
    let setting = MachineSetting::no4_haswell_ddr3_4g();
    let memory = PhysMemory::allocate(
        setting.system.capacity_bytes,
        0.9,
        AllocationPolicy::Fragmented {
            start_frame: 0,
            hole_probability: 0.02,
        },
        0xF3A6,
    );
    let report = run_dramdig_on(&setting, memory, DramDigConfig::fast());
    assert!(report.mapping.equivalent_to(setting.mapping()));
}

#[test]
fn recovered_mapping_drives_effective_rowhammer() {
    // The paper's correctness argument: hammering with the recovered mapping
    // induces many more flips than hammering with an incomplete one.
    let setting = MachineSetting::no1_sandy_bridge_ddr3_8g();
    let memory = PhysMemory::full(setting.system.capacity_bytes);
    let report = run_dramdig_on(&setting, memory, DramDigConfig::fast());
    let good_view = AttackerView::from_mapping(&report.mapping);

    let truth = setting.mapping();
    let shared = truth.shared_row_bits();
    let partial_rows: Vec<u8> = truth
        .row_bits()
        .iter()
        .copied()
        .filter(|b| !shared.contains(b))
        .collect();
    let incomplete_view = AttackerView::new(truth.bank_funcs().to_vec(), partial_rows);

    let cfg = HammerConfig {
        victims: 32,
        iterations_per_pair: 4_000,
        duration_ns: None,
        rng_seed: 0xE2E,
    };
    let mut machine = SimMachine::from_setting(&setting, SimConfig::fast_rowhammer());
    let good = run_double_sided(&mut machine, &good_view, &cfg);
    let mut machine = SimMachine::from_setting(&setting, SimConfig::fast_rowhammer());
    let bad = run_double_sided(&mut machine, &incomplete_view, &cfg);

    assert_eq!(good.truly_double_sided, good.pairs_attempted);
    assert!(good.flips > 0);
    assert!(
        good.flips > bad.flips,
        "correct mapping {} flips vs incomplete mapping {} flips",
        good.flips,
        bad.flips
    );
}

#[test]
fn phase_costs_reflect_pool_size_differences() {
    // Figure 2's explanation: the partition dominates, and machines that
    // select more addresses cost more time.
    let small = MachineSetting::no8_coffee_lake_ddr4_8g();
    let large = MachineSetting::no6_skylake_ddr4_16g();
    let report_small = run_dramdig_on(
        &small,
        PhysMemory::full(small.system.capacity_bytes),
        DramDigConfig::fast(),
    );
    let report_large = run_dramdig_on(
        &large,
        PhysMemory::full(large.system.capacity_bytes),
        DramDigConfig::fast(),
    );
    assert!(report_large.pool_size >= report_small.pool_size);
    assert!(report_large.total.elapsed_ns > report_small.total.elapsed_ns);
    let partition = report_large
        .cost_of(dramdig::driver::Phase::Partition)
        .unwrap();
    assert!(partition.measurements * 2 > report_large.total.measurements);
}
