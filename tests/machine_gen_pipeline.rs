//! Property tests over the machine generator: every sampled in-scope
//! machine must have a full-rank function set, round-trip through the
//! `dram-model` text codec, and be solved exactly by the DRAMDig pipeline
//! under the noiseless profile. Out-of-scope classes must keep their
//! defining property (undiscoverable span, timing-invisible remap).

use dramdig_repro::dram_model::{gf2, GeneratedMachine, MachineClass, MachineGen};
use dramdig_repro::dram_sim::{PhysMemory, SimConfig, SimMachine};
use dramdig_repro::dramdig::{DomainKnowledge, DramDig, DramDigConfig};
use dramdig_repro::mem_probe::SimProbe;

use proptest::prelude::*;

fn solve_noiseless(machine: &GeneratedMachine, seed: u64) -> Result<bool, String> {
    let sim = SimMachine::from_generated(machine, SimConfig::noiseless().with_seed(seed));
    let mut probe = SimProbe::new(sim, PhysMemory::full(machine.system.capacity_bytes));
    let knowledge = DomainKnowledge::for_generated(machine);
    let config = DramDigConfig::optimized().with_seed(seed ^ 0xD16);
    match DramDig::new(knowledge, config).run(&mut probe) {
        Ok(report) => Ok(report.mapping.equivalent_to(machine.mapping())),
        Err(e) => Err(e.to_string()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn in_scope_machines_are_solved_noiselessly(seed in 0u64..1_000_000) {
        let machine = MachineGen::new(seed).generate(MachineClass::InScope);
        prop_assert!(
            gf2::functions_independent(machine.mapping().bank_funcs()),
            "function set of {machine} lost full rank"
        );
        let decoded = GeneratedMachine::decode(&machine.encode())
            .map_err(|e| TestCaseError::fail(format!("codec round-trip of {machine}: {e}")))?;
        prop_assert_eq!(&decoded, &machine);
        match solve_noiseless(&machine, seed) {
            Ok(true) => {}
            Ok(false) => return Err(TestCaseError::fail(format!(
                "pipeline recovered a wrong mapping on {machine}"
            ))),
            Err(e) => return Err(TestCaseError::fail(format!(
                "pipeline failed on {machine}: {e}"
            ))),
        }
    }

    #[test]
    fn wide_function_machines_fail_loudly_not_wrongly(seed in 0u64..1_000_000) {
        let machine = MachineGen::new(seed).generate(MachineClass::WideFunction);
        match solve_noiseless(&machine, seed) {
            // Detected: the pipeline refused to invent a mapping.
            Err(_) => {}
            Ok(true) => return Err(TestCaseError::fail(format!(
                "pipeline cannot recover an 8+-bit function, yet claimed success on {machine}"
            ))),
            Ok(false) => return Err(TestCaseError::fail(format!(
                "pipeline silently returned a wrong mapping on {machine}"
            ))),
        }
    }

    #[test]
    fn row_remapped_machines_yield_the_linear_skeleton(seed in 0u64..1_000_000) {
        let machine = MachineGen::new(seed).generate(MachineClass::RowRemap);
        match solve_noiseless(&machine, seed) {
            Ok(true) => {}
            Ok(false) => return Err(TestCaseError::fail(format!(
                "recovered mapping does not match the skeleton of {machine}"
            ))),
            Err(e) => return Err(TestCaseError::fail(format!(
                "pipeline failed on remapped {machine}: {e}"
            ))),
        }
    }
}
