//! Integration tests comparing DRAMDig with the baseline tools — the
//! qualitative claims behind Table I.

use dram_baselines::{BaselineError, Drama, DramaConfig, Seaborn, Xiao};
use dram_model::MachineSetting;
use dram_sim::{PhysMemory, SimConfig, SimMachine};
use dramdig::{DomainKnowledge, DramDig, DramDigConfig};
use mem_probe::SimProbe;

fn probe_for(setting: &MachineSetting, seed: u64) -> SimProbe {
    let machine = SimMachine::from_setting(setting, SimConfig::default().with_seed(seed));
    SimProbe::new(machine, PhysMemory::full(setting.system.capacity_bytes))
}

#[test]
fn dramdig_is_deterministic_across_runs_and_noise_seeds() {
    let setting = MachineSetting::no7_skylake_ddr4_4g();
    let mut mappings = Vec::new();
    for seed in 0..3u64 {
        let mut probe = probe_for(&setting, seed);
        let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
        let report = DramDig::new(knowledge, DramDigConfig::fast())
            .run(&mut probe)
            .expect("run succeeds");
        mappings.push(report.mapping);
    }
    assert!(
        mappings.windows(2).all(|w| w[0] == w[1]),
        "DRAMDig must be deterministic"
    );
    assert!(mappings[0].equivalent_to(setting.mapping()));
}

#[test]
fn xiao_is_not_generic_but_dramdig_is() {
    // Xiao et al. handles the simple DDR3 single-DIMM settings and gets stuck
    // or refuses elsewhere; DRAMDig handles both.
    let works = MachineSetting::no4_haswell_ddr3_4g();
    let fails = MachineSetting::no6_skylake_ddr4_16g();

    let mut probe = probe_for(&works, 0);
    let outcome = Xiao::with_defaults()
        .run(&mut probe, &works.system)
        .unwrap();
    assert!(outcome.matches(works.mapping()));

    let mut probe = probe_for(&fails, 0);
    let err = Xiao::with_defaults()
        .run(&mut probe, &fails.system)
        .unwrap_err();
    assert!(matches!(
        err,
        BaselineError::NotApplicable { .. } | BaselineError::Stuck { .. }
    ));

    for setting in [&works, &fails] {
        let mut probe = probe_for(setting, 0);
        let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
        let report = DramDig::new(knowledge, DramDigConfig::fast())
            .run(&mut probe)
            .expect("DRAMDig is generic");
        assert!(report.mapping.equivalent_to(setting.mapping()));
    }
}

#[test]
fn drama_costs_more_measurements_than_dramdig_on_small_machines() {
    let setting = MachineSetting::no4_haswell_ddr3_4g();
    let mut probe = probe_for(&setting, 1);
    let knowledge = DomainKnowledge::new(setting.system, Some(setting.microarch));
    let dramdig_report = DramDig::new(knowledge, DramDigConfig::default())
        .run(&mut probe)
        .unwrap();

    let mut probe = probe_for(&setting, 1);
    let drama_outcome = Drama::new(DramaConfig::fast())
        .run(&mut probe, setting.system.address_bits())
        .unwrap();

    assert!(
        drama_outcome.measurements > dramdig_report.total.measurements,
        "DRAMA {} vs DRAMDig {}",
        drama_outcome.measurements,
        dramdig_report.total.measurements
    );
    assert!(drama_outcome.elapsed_ns > dramdig_report.total.elapsed_ns);
}

#[test]
fn drama_never_recovers_shared_row_bits() {
    let setting = MachineSetting::no1_sandy_bridge_ddr3_8g();
    let mut probe = probe_for(&setting, 2);
    let outcome = Drama::new(DramaConfig::fast())
        .run(&mut probe, setting.system.address_bits())
        .unwrap();
    for shared in setting.mapping().shared_row_bits() {
        assert!(
            !outcome.row_bits.contains(&shared),
            "DRAMA has no fine-grained step and cannot classify bit {shared}"
        );
    }
}

#[test]
fn seaborn_only_covers_sandy_bridge() {
    let sandy = MachineSetting::no1_sandy_bridge_ddr3_8g();
    let skylake = MachineSetting::no6_skylake_ddr4_16g();
    let mut machine = SimMachine::from_setting(&sandy, SimConfig::fast_rowhammer());
    let outcome = Seaborn::with_defaults()
        .run(&mut machine, sandy.microarch)
        .unwrap();
    assert!(outcome.matches(sandy.mapping()));

    let mut machine = SimMachine::from_setting(&skylake, SimConfig::fast_rowhammer());
    assert!(Seaborn::with_defaults()
        .run(&mut machine, skylake.microarch)
        .is_err());
}
