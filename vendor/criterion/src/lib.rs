//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no registry access, so this crate implements
//! just enough of the `criterion 0.5` API for the workspace's five bench
//! targets to compile and run: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Throughput`], [`Bencher::iter`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Timing is a simple "median of N wall-clock samples" — good enough to
//! spot order-of-magnitude regressions locally and to keep
//! `cargo bench --no-run` meaningful in CI, but not a statistics engine.
//! Swap in the real crate when registry access is available.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Number of timed samples per benchmark (each sample is one routine call).
const DEFAULT_SAMPLES: usize = 10;

/// Re-export of [`std::hint::black_box`] under criterion's historical name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; runs and times the routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    median_ns: u128,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            median_ns: 0,
        }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up call.
        std::hint::black_box(routine());
        let mut times: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            times.push(start.elapsed().as_nanos());
        }
        times.sort_unstable();
        self.median_ns = times[times.len() / 2];
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let per_iter = Duration::from_nanos(bencher.median_ns as u64);
    let mut line = format!("{name:<48} median {per_iter:>12.3?}/iter");
    if let Some(Throughput::Elements(n)) = throughput {
        if bencher.median_ns > 0 {
            let rate = n as f64 * 1e9 / bencher.median_ns as f64;
            line.push_str(&format!("  ({rate:.0} elem/s)"));
        }
    }
    if let Some(Throughput::Bytes(n)) = throughput {
        if bencher.median_ns > 0 {
            let rate = n as f64 * 1e9 / bencher.median_ns as f64;
            line.push_str(&format!("  ({rate:.0} B/s)"));
        }
    }
    println!("{line}");
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        // The real criterion collects `n` statistical samples; here each
        // sample is one routine call, so cap the count to keep runs short.
        self.sample_size = n.min(20);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), &bencher, self.throughput);
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Runs a benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher, self.throughput);
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Applies command-line configuration. The stand-in recognises (and
    /// ignores) criterion's standard flags so `cargo bench -- <filter>`
    /// does not error out.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: DEFAULT_SAMPLES,
            criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut bencher = Bencher::new(DEFAULT_SAMPLES);
        routine(&mut bencher);
        report(&name.to_string(), &bencher, None);
        self.benchmarks_run += 1;
        self
    }

    /// Called by [`criterion_main!`] after all groups ran.
    pub fn final_summary(&self) {
        println!("ran {} benchmark(s)", self.benchmarks_run);
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares the benchmark `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(5);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::from_parameter("sum"), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("direct", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }

    #[test]
    fn group_and_function_benches_run() {
        let mut c = Criterion::default().configure_from_args();
        sample_bench(&mut c);
        c.bench_function("top_level", |b| b.iter(|| black_box(1)));
        assert_eq!(c.benchmarks_run, 3);
    }

    criterion_group!(test_group, sample_bench);

    #[test]
    fn macros_produce_runnable_groups() {
        test_group();
    }
}
