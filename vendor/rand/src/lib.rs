//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the subset of the `rand 0.8` API the workspace actually uses is
//! re-implemented here: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] and
//! [`seq::SliceRandom`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed, which is all the
//! reverse-engineering pipeline and the test-suite rely on.
//!
//! This crate is *not* a cryptographically secure RNG and must be replaced
//! by the real `rand` crate the moment registry access is available; the
//! API is call-compatible so that swap is a one-line `Cargo.toml` change.

#![deny(missing_docs)]
#![deny(unsafe_code)]

/// A source of uniformly distributed 64-bit values.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the high half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a reproducible generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a type from the "standard" distribution (uniform over the
/// type's domain; `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range of values that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128) - (start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`. Panics on empty ranges.
    fn gen_range<T, Q: SampleRange<T>>(&mut self, range: Q) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of state,
            // as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let state = [next(), next(), next(), next()];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_and_choose_cover_the_slice() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut data: Vec<u32> = (0..32).collect();
        let original = data.clone();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
        assert!(data.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
