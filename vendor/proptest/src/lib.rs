//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of the `proptest 1` API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`, multiple
//!   `#[test]` functions and `name in strategy` bindings);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`];
//! * [`strategy::Strategy`] with `prop_map`, integer-range strategies,
//!   tuple strategies, [`arbitrary::any`] and [`collection::vec`] /
//!   [`collection::btree_set`].
//!
//! Unlike the real framework there is **no shrinking**: a failing case is
//! reported with its generated inputs (via `Debug`) but not minimised.
//! Generation is deterministic per test function, so failures reproduce.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod test_runner {
    //! Test-case plumbing shared by the [`crate::proptest!`] macro.

    /// Why a single generated test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An assertion failed; the property does not hold.
        Fail(String),
        /// `prop_assume!` rejected the inputs; try other inputs.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// Builds a rejection.
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    /// Result of one generated test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Builds the deterministic generator the [`crate::proptest!`] macro
    /// uses for one test function, seeded from the test's name so failures
    /// reproduce exactly across runs.
    pub fn deterministic_rng(test_name: &str) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        let mut seed = 0xD1A_D16u64;
        for byte in test_name.bytes() {
            seed = seed
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(u64::from(byte));
        }
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    /// Runtime configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
        /// Maximum number of `prop_assume!` rejections tolerated before
        /// the test aborts.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `map`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, map }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut StdRng) -> O {
            (self.map)(self.source.new_value(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! The [`any`] entry point for "any value of this type".

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_uniform {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uniform!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }

    /// Strategy generating any value of `T`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Strategies for containers.

    use std::collections::BTreeSet;

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// A half-open range of container sizes, as accepted by [`vec()`] and
    /// [`btree_set()`]. Built via `From` so bare `1..10` literals infer
    /// `usize`, exactly like the real proptest's `SizeRange`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "size range must be non-empty");
            SizeRange {
                start: range.start,
                end: range.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                start: *range.start(),
                end: range.end().checked_add(1).expect("size range overflow"),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                start: exact,
                end: exact + 1,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.start..self.end)
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        length: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `length`.
    pub fn vec<S: Strategy>(element: S, length: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            length: length.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.length.sample(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `BTreeSet`s whose target size is drawn from `size`.
    ///
    /// If the element domain is too small to reach the target size, the set
    /// is returned with as many distinct elements as could be drawn.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(64).max(256) {
                set.insert(self.element.new_value(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` block needs in scope.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Rejects the current generated case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Declares property tests, mirroring proptest's macro of the same name.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@body ($config) $($rest)*);
    };
    (
        @body ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::deterministic_rng(stringify!($name));
                $(let $arg = $strategy;)*
                let mut accepted = 0u32;
                let mut rejected = 0u32;
                while accepted < config.cases {
                    $(let $arg = $arg.new_value(&mut rng);)*
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $(let $arg = $arg;)*
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected < config.max_global_rejects,
                                "too many prop_assume! rejections in {}",
                                stringify!($name),
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(message)) => {
                            panic!(
                                "property {} failed after {} case(s): {}",
                                stringify!($name),
                                accepted + 1,
                                message,
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 1u8..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn tuples_and_map_compose(pair in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 20);
        }

        #[test]
        fn assume_skips_cases(v in any::<u64>()) {
            prop_assume!(v.is_multiple_of(2));
            prop_assert_eq!(v % 2, 0);
            prop_assert_ne!(v % 2, 1);
        }

        #[test]
        fn collections_honour_sizes(
            values in crate::collection::vec(any::<u32>(), 1..8),
            set in crate::collection::btree_set(0u8..60, 1..12),
        ) {
            prop_assert!((1..8).contains(&values.len()));
            prop_assert!(!set.is_empty() && set.len() < 12);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[allow(dead_code)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }
}
